"""Governance benchmark: runaway containment, cancellation cost, fairness.

Measures what the PR's governance layer claims, in four phases over one
R-MAT graph pair:

- ``cancel``   — co-batched runaway containment through the service: half
  the lanes of one K-lane personalized-PageRank batch carry deadlines
  they cannot meet, half run unbounded.  Records how far past its
  deadline each cancelled lane ran, **in units of its own superstep
  durations** (cooperative cancellation is superstep-granular by
  construction, so the overrun must be bounded by ~2 supersteps), and
  verifies the surviving lanes bitwise against sequential runs — a
  cancelled neighbor must not perturb co-batched results.
- ``budget``   — a token ``superstep_budget=B`` run must stop *exactly*
  at superstep B with results bitwise identical to a plain
  ``max_iterations=B`` run (cancellation is deterministic, not "roughly
  there").
- ``overhead`` — the cost of governance when it never fires: identical
  sequential runs with no token vs. an un-expiring deadline token.  The
  per-superstep token check must be perf-neutral
  (``plain_vs_token`` ~ 1.0).
- ``fairness`` — closed-loop flood containment: a flooding tenant fires
  far above its token-bucket rate while well-behaved tenants run a
  fixed workload on the same service.  Every well-behaved request must
  succeed (bitwise-checked), and the flood must actually be shed.

The emitted ``BENCH_governance.json`` carries hard floors (budget
exactness, survivor parity, superstep-granular overruns) plus the
perf-neutrality ratio, gated in CI by ``check_regression``.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_personalized_pagerank
from repro.bench.calibrate import machine_calibration
from repro.core.cancellation import CancellationToken
from repro.core.options import EngineOptions
from repro.errors import BenchmarkError, DeadlineExceededError, QuotaExceededError
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve.cache import ResultCache
from repro.serve.quota import QuotaManager, TenantPolicy
from repro.serve.registry import GraphRegistry
from repro.serve.scheduler import BatchPolicy
from repro.serve.service import GraphService

#: Scheduler noise allowance on top of the two-superstep overrun bound,
#: milliseconds — a GIL hand-off between the boundary that notices and
#: the clock read must not fail the granularity claim.
OVERRUN_SLACK_MS = 5.0

_OVERRUN_RE = re.compile(r"\(([\d.]+) ms past\)")


def _overrun_ms(reason: str) -> float:
    match = _OVERRUN_RE.search(reason or "")
    if not match:
        raise BenchmarkError(f"unparseable cancel reason: {reason!r}")
    return float(match.group(1))


def _top_degree(graph, count: int) -> list[int]:
    return [int(v) for v in np.argsort(graph.out_degrees())[-count:][::-1]]


# ----------------------------------------------------------------------
# Phase 1: co-batched deadline cancellation through the service
# ----------------------------------------------------------------------
def _cancel_phase(
    rmat,
    registry: GraphRegistry,
    *,
    n_lanes: int,
    cancel_iterations: int,
    runaway_deadline: float,
) -> dict:
    """Half runaway / half unbounded lanes in one batch; returns the cell."""
    from concurrent.futures import ThreadPoolExecutor

    pool_vertices = _top_degree(rmat, n_lanes)
    n_good = n_lanes // 2
    good_sources = pool_vertices[:n_good]
    runaway_sources = pool_vertices[n_good:]

    policy = BatchPolicy(max_batch_k=n_lanes, max_wait_ms=5_000.0)
    t0 = time.perf_counter()
    with GraphService(
        registry, policy=policy, cache=ResultCache(capacity=0)
    ) as service:
        with ThreadPoolExecutor(n_lanes) as pool:
            good = [
                pool.submit(
                    service.query, "dir", "ppr",
                    {"source": s, "iterations": cancel_iterations},
                )
                for s in good_sources
            ]
            runaway = [
                pool.submit(
                    service.query, "dir", "ppr",
                    {"source": s, "iterations": cancel_iterations},
                    deadline=runaway_deadline,
                )
                for s in runaway_sources
            ]
            survivors = [f.result(timeout=600) for f in good]
            failures = []
            for future in runaway:
                try:
                    future.result(timeout=600)
                except DeadlineExceededError as exc:
                    failures.append(exc)
                else:
                    raise BenchmarkError(
                        f"a runaway lane (deadline {runaway_deadline}s, "
                        f"{cancel_iterations} supersteps) finished instead "
                        f"of being cancelled; raise cancel_iterations or "
                        f"lower the deadline"
                    )
        governance = service.stats()["governance"]
    wall = time.perf_counter() - t0

    # Survivors: bitwise against the sequential engine.
    bitwise_ok = 0
    for source, result in zip(good_sources, survivors):
        reference = run_personalized_pagerank(
            rmat, source, max_iterations=cancel_iterations
        )
        bitwise_ok += int(np.array_equal(result.values, reference.ranks))

    # Runaways: cancelled at the engine, at superstep granularity.
    engine_cancelled = 0
    within_bound = 0
    overruns_supersteps: list[float] = []
    for failure in failures:
        stats = failure.run_stats
        if stats is None or not stats.cancelled:
            continue  # expired in the queue: contained, but not engine-timed
        engine_cancelled += 1
        overrun = _overrun_ms(stats.cancel_reason)
        superstep_ms = [
            1e3 * it.seconds for it in stats.iterations if it.seconds > 0
        ]
        if not superstep_ms:
            raise BenchmarkError("cancelled lane recorded no supersteps")
        bound = 2.0 * max(superstep_ms) + OVERRUN_SLACK_MS
        within_bound += int(overrun <= bound)
        mean_step = sum(superstep_ms) / len(superstep_ms)
        overruns_supersteps.append(overrun / mean_step if mean_step else 0.0)
    if not engine_cancelled:
        raise BenchmarkError(
            "no runaway lane reached the engine before its deadline — "
            "the cancellation-granularity phase measured nothing; raise "
            "runaway_deadline"
        )

    return {
        "seconds": wall,
        "lanes": n_lanes,
        "iterations": cancel_iterations,
        "runaway_deadline_s": runaway_deadline,
        "survivor_lanes": len(survivors),
        "survivor_bitwise": bitwise_ok / max(1, len(survivors)),
        "cancelled_lanes": governance["cancelled_lanes"],
        "engine_cancelled": engine_cancelled,
        "within_two_supersteps": within_bound / engine_cancelled,
        "mean_overrun_supersteps": (
            sum(overruns_supersteps) / len(overruns_supersteps)
        ),
        "max_overrun_supersteps": max(overruns_supersteps),
    }


# ----------------------------------------------------------------------
# Phase 2: superstep-budget exactness (engine level)
# ----------------------------------------------------------------------
def _budget_phase(
    rmat, *, budget: int, cancel_iterations: int, n_sources: int
) -> dict:
    """Budget-B token runs vs plain ``max_iterations=B`` runs, bitwise."""
    sources = _top_degree(rmat, n_sources)
    exact = 0
    t0 = time.perf_counter()
    for source in sources:
        token = CancellationToken(superstep_budget=budget)
        governed = run_personalized_pagerank(
            rmat, source,
            max_iterations=cancel_iterations,
            options=EngineOptions(token=token),
        )
        if not governed.stats.cancelled:
            raise BenchmarkError(
                f"budget token never fired (budget {budget} vs "
                f"{cancel_iterations} iterations)"
            )
        plain = run_personalized_pagerank(
            rmat, source, max_iterations=budget
        )
        exact += int(
            governed.stats.n_supersteps == budget
            and np.array_equal(governed.ranks, plain.ranks)
        )
    return {
        "seconds": time.perf_counter() - t0,
        "budget": budget,
        "runs": len(sources),
        "budget_exact": exact / len(sources),
    }


# ----------------------------------------------------------------------
# Phase 3: governance overhead when it never fires
# ----------------------------------------------------------------------
def _overhead_phase(rmat, *, pr_iterations: int, n_runs: int) -> dict:
    """Identical runs, no token vs un-expiring token; ratio ~ 1.0."""
    sources = _top_degree(rmat, n_runs)
    # Warm both paths (matrix views, property allocation) before timing.
    run_personalized_pagerank(rmat, sources[0], max_iterations=2)

    t0 = time.perf_counter()
    for source in sources:
        run_personalized_pagerank(
            rmat, source, max_iterations=pr_iterations
        )
    plain_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    for source in sources:
        token = CancellationToken(timeout=3_600.0)
        run_personalized_pagerank(
            rmat, source,
            max_iterations=pr_iterations,
            options=EngineOptions(token=token),
        )
    token_seconds = time.perf_counter() - t0

    return {
        "plain_seconds": plain_seconds,
        "token_seconds": token_seconds,
        "runs": n_runs,
        "iterations": pr_iterations,
        "plain_vs_token": (
            plain_seconds / token_seconds if token_seconds else 0.0
        ),
    }


# ----------------------------------------------------------------------
# Phase 4: closed-loop flood fairness under per-tenant quotas
# ----------------------------------------------------------------------
def _fairness_phase(
    rmat_sym,
    registry: GraphRegistry,
    *,
    n_lanes: int,
    good_requests: int,
    flood_requests: int,
    flood_rate: float,
) -> dict:
    """Flooding tenant vs well-behaved tenants on one quota'd service."""
    roots = _top_degree(rmat_sym, 8)
    references = {
        root: run_bfs(rmat_sym, root).distances for root in roots
    }
    quota = QuotaManager(
        per_tenant={"flood": TenantPolicy(rate=flood_rate, burst=4)},
    )
    policy = BatchPolicy(
        max_batch_k=n_lanes, max_wait_ms=2.0,
        max_queue=max(256, 4 * (good_requests + flood_requests)),
    )
    good_outcomes = {"ok": 0, "failed": 0, "mismatch": 0}
    flood_outcomes = {"ok": 0, "shed": 0, "other": 0}
    counts_lock = threading.Lock()

    t0 = time.perf_counter()
    with GraphService(
        registry, policy=policy, quota=quota, cache=ResultCache(capacity=0)
    ) as service:

        def flood(n: int) -> None:
            for i in range(n):
                try:
                    service.query(
                        "sym", "bfs", {"root": roots[i % len(roots)]},
                        tenant="flood", deadline=30.0,
                    )
                    outcome = "ok"
                except QuotaExceededError:
                    outcome = "shed"
                except Exception:
                    outcome = "other"
                with counts_lock:
                    flood_outcomes[outcome] += 1

        def well_behaved(tenant: str, n: int) -> None:
            for i in range(n):
                root = roots[i % len(roots)]
                try:
                    result = service.query(
                        "sym", "bfs", {"root": root},
                        tenant=tenant, deadline=30.0,
                    )
                except Exception:
                    outcome = "failed"
                else:
                    outcome = (
                        "ok"
                        if np.array_equal(result.values, references[root])
                        else "mismatch"
                    )
                with counts_lock:
                    good_outcomes[outcome] += 1

        threads = [
            threading.Thread(target=flood, args=(flood_requests // 2,)),
            threading.Thread(target=flood, args=(flood_requests // 2,)),
            threading.Thread(
                target=well_behaved, args=("alice", good_requests // 2)
            ),
            threading.Thread(
                target=well_behaved, args=("bob", good_requests // 2)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tenants = service.stats()["governance"]["quota"]["tenants"]
    wall = time.perf_counter() - t0

    flood_total = sum(flood_outcomes.values())
    good_total = sum(good_outcomes.values())
    return {
        "seconds": wall,
        "good": dict(
            good_outcomes,
            requests=good_total,
        ),
        "flood": dict(
            flood_outcomes,
            requests=flood_total,
            rate_limit=flood_rate,
        ),
        "good_success_rate": good_outcomes["ok"] / max(1, good_total),
        "flood_rejected_fraction": (
            flood_outcomes["shed"] / max(1, flood_total)
        ),
        "tenants": tenants,
    }


def bench_governance(
    scale: int = 14,
    edge_factor: int = 16,
    n_lanes: int = 8,
    cancel_iterations: int = 1000,
    runaway_deadline: float = 0.05,
    budget: int = 10,
    budget_runs: int = 3,
    pr_iterations: int = 30,
    overhead_runs: int = 6,
    good_requests: int = 40,
    flood_requests: int = 200,
    flood_rate: float = 20.0,
    seed: int = 0,
) -> dict:
    """Run the four governance phases; returns the record."""
    rmat = rmat_graph(
        scale=scale, edge_factor=edge_factor, seed=seed, weighted=True
    )
    rmat_sym = symmetrize(rmat)
    registry = GraphRegistry()
    registry.add_graph("dir", rmat)
    registry.add_graph("sym", rmat_sym)
    for graph in (rmat, rmat_sym):
        graph.cache_key()  # pre-hash so no timed phase pays it

    record: dict = {
        "meta": {
            "benchmark": "bench_governance",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": rmat.n_vertices,
            "n_edges": rmat.n_edges,
            "n_lanes": n_lanes,
            "cancel_iterations": cancel_iterations,
            "runaway_deadline_s": runaway_deadline,
            "pr_iterations": pr_iterations,
            "good_requests": good_requests,
            "flood_requests": flood_requests,
            "cpu_count": os.cpu_count(),
            "calibration_seconds": machine_calibration(),
        }
    }

    record["cancel"] = _cancel_phase(
        rmat, registry,
        n_lanes=n_lanes,
        cancel_iterations=cancel_iterations,
        runaway_deadline=runaway_deadline,
    )
    record["budget"] = _budget_phase(
        rmat,
        budget=budget,
        cancel_iterations=cancel_iterations,
        n_sources=budget_runs,
    )
    record["overhead"] = _overhead_phase(
        rmat, pr_iterations=pr_iterations, n_runs=overhead_runs
    )
    record["fairness"] = _fairness_phase(
        rmat_sym, registry,
        n_lanes=n_lanes,
        good_requests=good_requests,
        flood_requests=flood_requests,
        flood_rate=flood_rate,
    )
    record["parity"] = {
        "survivor_bitwise": record["cancel"]["survivor_bitwise"],
    }
    record["acceptance"] = {
        "budget_exact": record["budget"]["budget_exact"] == 1.0,
        "survivor_bitwise": record["cancel"]["survivor_bitwise"] == 1.0,
        "within_two_supersteps": (
            record["cancel"]["within_two_supersteps"] == 1.0
        ),
        "good_success_rate_ok": (
            record["fairness"]["good_success_rate"] >= 0.95
        ),
        "flood_shed": record["fairness"]["flood_rejected_fraction"] >= 0.05,
        "token_overhead_ok": record["overhead"]["plain_vs_token"] >= 0.75,
    }
    record["acceptance"]["meets_target"] = all(record["acceptance"].values())
    return record


def write_governance_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize(record: dict) -> str:
    """Human-readable digest of one governance record."""
    meta = record["meta"]
    cancel = record["cancel"]
    budget = record["budget"]
    overhead = record["overhead"]
    fairness = record["fairness"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges); K={meta['n_lanes']}, runaway deadline "
        f"{meta['runaway_deadline_s'] * 1e3:.0f} ms",
        "",
        f"cancel:   {cancel['engine_cancelled']}/{cancel['lanes'] // 2} "
        f"runaway lanes engine-cancelled; overrun mean "
        f"{cancel['mean_overrun_supersteps']:.2f} / max "
        f"{cancel['max_overrun_supersteps']:.2f} supersteps; survivors "
        f"bitwise {cancel['survivor_bitwise']:.0%}",
        f"budget:   {budget['runs']} budget-{budget['budget']} runs, "
        f"exact {budget['budget_exact']:.0%}",
        f"overhead: plain {overhead['plain_seconds']:.3f}s vs token "
        f"{overhead['token_seconds']:.3f}s "
        f"(ratio {overhead['plain_vs_token']:.2f}x)",
        f"fairness: good {fairness['good_success_rate']:.0%} of "
        f"{fairness['good']['requests']} ok; flood shed "
        f"{fairness['flood_rejected_fraction']:.0%} of "
        f"{fairness['flood']['requests']}",
    ]
    acc = record["acceptance"]
    status = "PASS" if acc["meets_target"] else "FAIL"
    failed = [k for k, v in acc.items() if k != "meets_target" and not v]
    lines.append(
        f"\nacceptance: {status}"
        + (f" (failed: {', '.join(failed)})" if failed else "")
    )
    return "\n".join(lines)
