"""Ingest/snapshot benchmark: cold parse vs streaming ingest vs mmap load.

Quantifies what ``repro.store`` buys on the loading path the paper calls
out as dominating end-to-end time:

- ``cold``            — the pre-snapshot path: parse the text edge list
  (``read_edge_list``) and build the engine's partitioned DCSC out view
  from scratch.
- ``ingest``          — one streaming conversion of the same file into a
  ``.gmsnap`` snapshot (bounded memory; reported with its peak
  per-partition edge count).
- ``snapshot_load``   — ``load_snapshot``: mmap the container and hand
  the engine zero-copy views; this is what every warm start pays.
- ``process_startup`` — ``ProcessExecutor.prepare`` on in-memory vs
  snapshot-backed views: pool spin-up time plus the estimated bytes the
  static hand-off moves (snapshot blocks ship as file references).

- ``parallel``        — the same conversion at each worker count in
  ``worker_counts``: per-pass seconds, edges/s, aggregated counters, and
  a byte-level ``filecmp`` of every snapshot against the single-process
  one (the ``.gmsnap`` must be identical for any worker count).

A parity check runs PageRank on the cold-parsed and snapshot-loaded
graphs and records the maximum absolute rank difference (must be 0.0:
mmap views feed the same kernels the in-memory arrays do), plus a
``pagerank_bitwise`` flag (1.0 = bitwise-equal ranks).

:func:`acceptance_check` evaluates the record against the contract:
parity flags are unconditional; the parallel speedup bar only applies
on machines with enough cores to express one (like the compiled-tier
bench, which only demands speedup where Numba exists).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.pagerank import PageRankProgram, init_pagerank
from repro.bench.calibrate import machine_calibration
from repro.core.engine import run_graph_program
from repro.core.options import EngineOptions
from repro.exec.process import ProcessExecutor
from repro.graph.generators.rmat import rmat_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.store import close_snapshots, ingest_edge_list, load_snapshot


def _pagerank_vector(graph, iterations: int) -> np.ndarray:
    program = PageRankProgram()
    init_pagerank(graph, program)
    run_graph_program(
        graph, program, EngineOptions(max_iterations=iterations)
    )
    return graph.vertex_properties.data.copy()


def _time_process_prepare(views, n_workers: int) -> dict:
    executor = ProcessExecutor(n_workers)
    t0 = time.perf_counter()
    executor.prepare(views, PageRankProgram())
    seconds = time.perf_counter() - t0
    ship_bytes = executor.ship_bytes
    executor.close()
    return {"prepare_seconds": seconds, "ship_bytes": int(ship_bytes)}


def bench_ingest(
    scale: int = 16,
    edge_factor: int = 16,
    n_partitions: int = 8,
    strategy: str = "rows",
    chunk_edges: int = 1 << 18,
    repeats: int = 3,
    pr_iterations: int = 3,
    n_workers: int = 2,
    seed: int = 0,
    work_dir: str | Path | None = None,
    worker_counts: tuple[int, ...] = (1, 2, 4),
) -> dict:
    """Run the loading-path comparison; returns the JSON-ready record."""
    import shutil
    import tempfile

    owns_work_dir = work_dir is None
    work_dir = (
        Path(tempfile.mkdtemp(prefix="bench_ingest_"))
        if work_dir is None
        else Path(work_dir)
    )
    work_dir.mkdir(parents=True, exist_ok=True)
    try:
        return _bench_ingest_in(
            work_dir,
            scale=scale,
            edge_factor=edge_factor,
            n_partitions=n_partitions,
            strategy=strategy,
            chunk_edges=chunk_edges,
            repeats=repeats,
            pr_iterations=pr_iterations,
            n_workers=n_workers,
            seed=seed,
            worker_counts=worker_counts,
        )
    finally:
        close_snapshots()  # release the mmap before deleting its file
        if owns_work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def _bench_ingest_in(
    work_dir: Path,
    *,
    scale: int,
    edge_factor: int,
    n_partitions: int,
    strategy: str,
    chunk_edges: int,
    repeats: int,
    pr_iterations: int,
    n_workers: int,
    seed: int,
    worker_counts: tuple[int, ...],
) -> dict:
    graph = rmat_graph(scale=scale, edge_factor=edge_factor, seed=seed)
    edge_path = work_dir / "graph.tsv"
    write_edge_list(graph, edge_path, weighted=False)
    snapshot_path = work_dir / "graph.gmsnap"

    record: dict = {
        "meta": {
            "benchmark": "bench_ingest",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "n_partitions": n_partitions,
            "strategy": strategy,
            "chunk_edges": chunk_edges,
            "repeats": repeats,
            "n_workers": n_workers,
            "worker_counts": [int(w) for w in worker_counts],
            "cpu_count": os.cpu_count(),
            "edge_list_bytes": edge_path.stat().st_size,
            "calibration_seconds": machine_calibration(),
        }
    }

    # -- cold: text parse + DCSC build, best of `repeats` ---------------
    best_parse = best_build = float("inf")
    cold_graph = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        parsed = read_edge_list(edge_path, weighted=False)
        t1 = time.perf_counter()
        parsed.out_partitions(n_partitions, strategy)
        t2 = time.perf_counter()
        if (t2 - t0) < (best_parse + best_build):
            best_parse, best_build = t1 - t0, t2 - t1
        cold_graph = parsed
    record["cold"] = {
        "parse_seconds": best_parse,
        "build_seconds": best_build,
        "total_seconds": best_parse + best_build,
    }

    # -- streaming ingest (single-process conversion: the baseline) -----
    report = ingest_edge_list(
        edge_path,
        snapshot_path,
        n_partitions=n_partitions,
        strategy=strategy,
        chunk_edges=chunk_edges,
        workers=1,
    )
    record["ingest"] = _ingest_section(report)

    # -- parallel ingest: same conversion at each worker count ----------
    import filecmp

    parallel: dict = {"runs": {}}
    bytes_identical = True
    counters_equal = True
    for count in worker_counts:
        out_path = work_dir / f"graph.w{count}.gmsnap"
        run = ingest_edge_list(
            edge_path,
            out_path,
            n_partitions=n_partitions,
            strategy=strategy,
            chunk_edges=chunk_edges,
            workers=count,
        )
        parallel["runs"][f"w{count}"] = _ingest_section(run)
        bytes_identical &= filecmp.cmp(snapshot_path, out_path, shallow=False)
        counters_equal &= (
            run.chunks == report.chunks
            and run.peak_partition_edges == report.peak_partition_edges
            and run.n_edges == report.n_edges
            and run.n_edges_raw == report.n_edges_raw
        )
        out_path.unlink()
    single = parallel["runs"].get("w1", record["ingest"])
    best_workers, best_run = max(
        parallel["runs"].items(), key=lambda kv: kv[1]["edges_per_sec"]
    )
    parallel["best_workers"] = int(best_workers[1:])
    parallel["speedup_best_vs_single"] = (
        best_run["edges_per_sec"] / single["edges_per_sec"]
        if single["edges_per_sec"]
        else 0.0
    )
    parallel["counters_equal"] = 1.0 if counters_equal else 0.0
    record["parallel"] = parallel

    # -- snapshot load: mmap + view adoption, best of `repeats` ---------
    best_load = float("inf")
    snap_graph = None
    for _ in range(max(1, repeats)):
        close_snapshots()  # drop the reader cache: each load pays mmap+manifest
        t0 = time.perf_counter()
        snap_graph = load_snapshot(snapshot_path)
        best_load = min(best_load, time.perf_counter() - t0)
    record["snapshot_load"] = {"seconds": best_load, "mmap": True}
    record["speedup"] = {
        "snapshot_vs_cold": (
            record["cold"]["total_seconds"] / best_load if best_load else 0.0
        )
    }

    # -- process-backend startup: in-memory vs snapshot-backed views ----
    record["process_startup"] = {
        "in_memory": _time_process_prepare(
            [cold_graph.out_partitions(n_partitions, strategy)], n_workers
        ),
        "snapshot": _time_process_prepare(
            [snap_graph.peek_partitions("out", n_partitions, strategy)],
            n_workers,
        ),
    }

    # -- parity: identical PageRank through both loading paths ----------
    cold_ranks = _pagerank_vector(cold_graph, pr_iterations)
    snap_ranks = _pagerank_vector(snap_graph, pr_iterations)
    record["parity"] = {
        "pagerank_iterations": pr_iterations,
        "max_abs_diff": float(np.max(np.abs(cold_ranks - snap_ranks)))
        if cold_ranks.size
        else 0.0,
        "pagerank_bitwise": 1.0 if np.array_equal(cold_ranks, snap_ranks) else 0.0,
        "parallel_bytes_identical": 1.0 if bytes_identical else 0.0,
    }
    return record


def _ingest_section(report) -> dict:
    """One ingest run's JSON-ready timings and counters."""
    return {
        "total_seconds": report.total_seconds,
        "parse_seconds": report.parse_seconds,
        "route_seconds": report.route_seconds,
        "finalize_seconds": report.finalize_seconds,
        "workers": report.workers,
        "chunks": report.chunks,
        "peak_partition_edges": report.peak_partition_edges,
        "snapshot_bytes": report.snapshot_bytes,
        "edges_per_sec": (
            report.n_edges_raw / report.total_seconds
            if report.total_seconds
            else 0.0
        ),
    }


def acceptance_check(record: dict) -> list[str]:
    """Contract failures in one benchmark record (empty list = pass).

    Parity must hold everywhere.  The parallel speedup bar only applies
    where the machine can express one: >= 4 CPUs and a 4-worker run in
    the record, at scale >= 16 (small graphs are dominated by pool
    startup).  Records from few-core machines still carry honest
    parallel numbers; they just aren't held to the multi-core bar.
    """
    failures: list[str] = []
    parity = record["parity"]
    if parity["max_abs_diff"] != 0.0:
        failures.append(
            f"pagerank parity broken: max|diff| = {parity['max_abs_diff']}"
        )
    if parity.get("pagerank_bitwise") != 1.0:
        failures.append("snapshot PageRank is not bitwise-equal to cold parse")
    if parity.get("parallel_bytes_identical") != 1.0:
        failures.append("snapshot bytes differ across worker counts")
    parallel = record.get("parallel", {})
    if parallel.get("counters_equal") != 1.0:
        failures.append("IngestReport counters differ across worker counts")
    meta = record["meta"]
    cpu_count = meta.get("cpu_count") or 1
    if (
        cpu_count >= 4
        and meta.get("scale", 0) >= 16
        and "w4" in parallel.get("runs", {})
    ):
        single = parallel["runs"].get("w1", record["ingest"])
        four = parallel["runs"]["w4"]
        speedup = (
            four["edges_per_sec"] / single["edges_per_sec"]
            if single["edges_per_sec"]
            else 0.0
        )
        if speedup < 4.0:
            failures.append(
                f"4-worker ingest speedup {speedup:.2f}x < 4x "
                f"on a {cpu_count}-core machine"
            )
    return failures


def write_ingest_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize_ingest(record: dict) -> str:
    """Human-readable digest of one benchmark record."""
    meta = record["meta"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges), edge list "
        f"{meta['edge_list_bytes'] / 1e6:.1f} MB",
        "",
        f"cold parse+build   {record['cold']['total_seconds']:>9.3f} s "
        f"(parse {record['cold']['parse_seconds']:.3f} + build "
        f"{record['cold']['build_seconds']:.3f})",
        f"streaming ingest   {record['ingest']['total_seconds']:>9.3f} s "
        f"(peak partition {record['ingest']['peak_partition_edges']} edges, "
        f"{record['ingest']['snapshot_bytes'] / 1e6:.1f} MB snapshot)",
        f"snapshot mmap load {record['snapshot_load']['seconds']:>9.5f} s "
        f"-> {record['speedup']['snapshot_vs_cold']:.0f}x faster than cold",
    ]
    parallel = record.get("parallel")
    if parallel:
        lines.append("")
        for key, run in parallel["runs"].items():
            lines.append(
                f"parallel ingest {key:>3}: {run['total_seconds']:>8.3f} s "
                f"({run['edges_per_sec'] / 1e3:,.0f}k edges/s; parse "
                f"{run['parse_seconds']:.2f} route {run['route_seconds']:.2f} "
                f"finalize {run['finalize_seconds']:.2f})"
            )
        lines.append(
            f"best {parallel['speedup_best_vs_single']:.2f}x at "
            f"{parallel['best_workers']} workers; snapshots byte-identical: "
            f"{record['parity']['parallel_bytes_identical'] == 1.0}"
        )
    startup = record["process_startup"]
    lines += [
        "",
        "process-backend static hand-off: "
        f"{startup['in_memory']['ship_bytes']} B in-memory -> "
        f"{startup['snapshot']['ship_bytes']} B snapshot-backed "
        f"(prepare {startup['in_memory']['prepare_seconds']:.3f}s -> "
        f"{startup['snapshot']['prepare_seconds']:.3f}s)",
        f"pagerank parity max|diff| = {record['parity']['max_abs_diff']}",
    ]
    return "\n".join(lines)
