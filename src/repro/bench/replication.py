"""Replication benchmark: lag, catch-up, and crash-recovery times.

The questions this answers for the leader -> follower delta-log
replication path (``repro.serve.replication``):

- **replication lag** — a mutation commits on the leader; how long
  until a follower tailing the log over HTTP long-poll has applied it
  and serves reads at the same epoch?  Measured per batch over a live
  leader/follower pair on loopback; mean and max reported.
- **catch-up** — a follower starts from nothing against a leader that
  already holds the full mutation history: snapshot download +
  catch-up-then-swap log replay, timed start -> epoch parity.
- **crash recovery** — the single-node restart path the follower's
  resume also reuses: construct a fresh :class:`GraphService` over the
  surviving snapshot + delta log and time the torn-tail repair +
  replay until the service answers at the pre-crash epoch.
- **parity** — after tailing every batch the follower's BFS response
  must be bitwise identical to the leader's
  (``parity.follower_bitwise`` is a hard 1.0 floor in the CI gate).

All three paths move the same ``batches x batch_edges`` history, so
the numbers are comparable: lag amortizes the history over live
long-poll round-trips, catch-up replays it in bulk over HTTP, recovery
replays it from the local disk with no network at all.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from repro.bench.calibrate import machine_calibration
from repro.errors import ReplicationError
from repro.graph.generators.rmat import rmat_graph
from repro.store import close_snapshots, save_snapshot


def _wait_for(predicate, timeout: float, what: str) -> float:
    """Poll ``predicate`` until true; returns elapsed seconds."""
    t0 = time.perf_counter()
    deadline = t0 + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return time.perf_counter() - t0
        time.sleep(0.0005)
    raise ReplicationError(f"timed out after {timeout:.0f}s waiting for {what}")


def bench_replication(
    scale: int = 16,
    edge_factor: int = 16,
    batches: int = 50,
    batch_edges: int = 256,
    repeats: int = 3,
    seed: int = 0,
    timeout: float = 300.0,
    work_dir: str | Path | None = None,
) -> dict:
    """Run the replication comparison; returns the JSON-ready record."""
    import shutil
    import tempfile

    owns_work_dir = work_dir is None
    work_dir = (
        Path(tempfile.mkdtemp(prefix="bench_replication_"))
        if work_dir is None
        else Path(work_dir)
    )
    work_dir.mkdir(parents=True, exist_ok=True)
    try:
        return _bench_replication_in(
            work_dir,
            scale=scale,
            edge_factor=edge_factor,
            batches=batches,
            batch_edges=batch_edges,
            repeats=repeats,
            seed=seed,
            timeout=timeout,
        )
    finally:
        close_snapshots()
        if owns_work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def _bench_replication_in(
    work_dir: Path,
    *,
    scale: int,
    edge_factor: int,
    batches: int,
    batch_edges: int,
    repeats: int,
    seed: int,
    timeout: float,
) -> dict:
    from repro.serve import (
        GraphRegistry,
        GraphService,
        ReplicationFollower,
        make_server,
    )

    rng = np.random.default_rng(seed)
    built = rmat_graph(scale=scale, edge_factor=edge_factor, seed=seed)
    n = built.n_vertices
    snap = work_dir / "g.gmsnap"
    save_snapshot(built, snap)
    root = int(np.argmax(np.bincount(built.edges.rows, minlength=n)))

    record: dict = {
        "meta": {
            "benchmark": "bench_replication",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": n,
            "n_edges": built.n_edges,
            "batches": batches,
            "batch_edges": batch_edges,
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "calibration_seconds": machine_calibration(),
        }
    }

    registry = GraphRegistry()
    registry.add_snapshot("g", snap)
    leader = GraphService(registry, delta_log_dir=work_dir / "wal")
    server = make_server(leader, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]

    def follower_pair(replica_name: str):
        fregistry = GraphRegistry()
        fservice = GraphService(fregistry, read_only=True)
        follower = ReplicationFollower(
            fservice,
            url,
            replica_dir=work_dir / replica_name,
            poll_timeout=5.0,
        )
        return fservice, follower

    def epochs_match(fservice) -> bool:
        try:
            return (
                fservice.registry.entry("g").epoch
                == leader.registry.entry("g").epoch
            )
        except Exception:  # noqa: BLE001 — graph not installed yet
            return False

    try:
        # -- live tail: per-batch replication lag -----------------------
        fservice, follower = follower_pair("replica-live")
        follower.start()
        bootstrap_seconds = _wait_for(
            lambda: epochs_match(fservice), timeout, "follower bootstrap"
        )
        lags = []
        for _ in range(batches):
            src = rng.integers(0, n, batch_edges).tolist()
            dst = rng.integers(0, n, batch_edges).tolist()
            t0 = time.perf_counter()
            leader.mutate("g", inserts=(src, dst))
            _wait_for(
                lambda: epochs_match(fservice), timeout, "batch replication"
            )
            lags.append(time.perf_counter() - t0)
        want = leader.query("g", "bfs", {"root": root}).values
        got = fservice.query("g", "bfs", {"root": root}).values
        bitwise = bool(np.array_equal(want, got, equal_nan=True))
        live_status = follower.status()
        follower.stop()
        fservice.close()
        record["bootstrap"] = {"seconds": bootstrap_seconds}
        record["lag"] = {
            "batches": batches,
            "batch_edges": batch_edges,
            "mean_seconds": float(np.mean(lags)),
            "max_seconds": float(np.max(lags)),
            "snapshots_installed": live_status["snapshots_installed"],
        }

        # -- cold catch-up against the full history (best of repeats) ---
        catchup_seconds = float("inf")
        for repeat in range(max(1, repeats)):
            fservice2, follower2 = follower_pair(f"replica-cold{repeat}")
            t0 = time.perf_counter()
            follower2.start()
            _wait_for(
                lambda: epochs_match(fservice2), timeout, "cold catch-up"
            )
            catchup_seconds = min(
                catchup_seconds, time.perf_counter() - t0
            )
            got2 = fservice2.query("g", "bfs", {"root": root}).values
            bitwise = bitwise and bool(
                np.array_equal(want, got2, equal_nan=True)
            )
            follower2.stop()
            fservice2.close()
        record["catchup"] = {
            "seconds": catchup_seconds,
            "log_bytes": leader.replication_status("g")["log_bytes"],
        }

        # -- crash recovery from the surviving local state --------------
        target_epoch = leader.registry.entry("g").epoch
        server.shutdown()
        server.server_close()
        leader.close()
        recovery_seconds = float("inf")
        for _ in range(max(1, repeats)):
            registry2 = GraphRegistry()
            registry2.add_snapshot("g", snap)
            t0 = time.perf_counter()
            recovered = GraphService(
                registry2, delta_log_dir=work_dir / "wal"
            )
            recovery_values = recovered.query(
                "g", "bfs", {"root": root}
            ).values
            recovery_seconds = min(
                recovery_seconds, time.perf_counter() - t0
            )
            assert recovered.registry.entry("g").epoch == target_epoch
            bitwise = bitwise and bool(
                np.array_equal(want, recovery_values, equal_nan=True)
            )
            stats = recovered.stats()["mutations"]
            recovered.close()
        record["recovery"] = {
            "seconds": recovery_seconds,
            "epoch": target_epoch,
            "recovered_batches": stats["recovered_batches"],
        }
    except BaseException:
        try:
            server.shutdown()
            server.server_close()
            leader.close()
        except Exception:  # noqa: BLE001 — teardown after failure
            pass
        raise

    record["parity"] = {"follower_bitwise": 1.0 if bitwise else 0.0}
    return record


def write_replication_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize_replication(record: dict) -> str:
    """Human-readable digest of one benchmark record."""
    meta = record["meta"]
    lag = record["lag"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges), {meta['batches']} batches x "
        f"{meta['batch_edges']} edges",
        "",
        f"bootstrap (snapshot + swap): "
        f"{record['bootstrap']['seconds']:.3f} s",
        f"replication lag: mean {1e3 * lag['mean_seconds']:.1f} ms, "
        f"max {1e3 * lag['max_seconds']:.1f} ms per batch",
        f"cold catch-up ({record['catchup']['log_bytes']} log bytes): "
        f"{record['catchup']['seconds']:.3f} s",
        f"crash recovery ({record['recovery']['recovered_batches']} batches "
        f"-> epoch {record['recovery']['epoch']}): "
        f"{record['recovery']['seconds']:.3f} s",
        "",
        f"follower bitwise parity: "
        f"{bool(record['parity']['follower_bitwise'])}",
    ]
    return "\n".join(lines)
