"""Grid runner: frameworks x datasets for one algorithm (one Figure 4 panel).

Each cell warms the framework once on the prepared graph (building cached
matrix views, exactly as the paper excludes graph loading from timings),
then times a measured run.  A framework that raises
:class:`~repro.errors.BenchmarkError` records a DNF — the paper's
"CombBLAS fails to complete" entries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.cases import (
    PER_ITERATION_ALGORITHMS,
    PreparedCase,
    prepare_case,
    run_params,
)
from repro.errors import BenchmarkError
from repro.frameworks.base import Framework, RunRecord
from repro.frameworks.registry import make_framework


@dataclass
class CellResult:
    """One framework on one dataset."""

    framework: str
    dataset: str
    algorithm: str
    seconds: float | None  # None = DNF
    record: RunRecord | None
    value: object = None
    dnf_reason: str = ""

    @property
    def completed(self) -> bool:
        return self.seconds is not None

    def metric_seconds(self) -> float | None:
        """The figure's y-value: total time, or time/iteration for PR/CF."""
        if self.seconds is None:
            return None
        if (
            self.algorithm in PER_ITERATION_ALGORITHMS
            and self.record is not None
            and self.record.iterations
        ):
            return self.seconds / self.record.iterations
        return self.seconds


@dataclass
class GridResult:
    """All cells of one algorithm's comparison grid."""

    algorithm: str
    datasets: list[str]
    frameworks: list[str]
    cells: dict[tuple[str, str], CellResult] = field(default_factory=dict)

    def cell(self, framework: str, dataset: str) -> CellResult:
        return self.cells[(framework, dataset)]

    def speedup_over(
        self, baseline: str, reference: str = "graphmat"
    ) -> dict[str, float | None]:
        """Per-dataset speedup of ``reference`` vs ``baseline``.

        ``None`` marks a DNF baseline (infinite speedup, reported as such
        in the tables); missing reference cells raise.
        """
        out: dict[str, float | None] = {}
        for ds in self.datasets:
            ref = self.cell(reference, ds).metric_seconds()
            base_cell = self.cell(baseline, ds)
            base = base_cell.metric_seconds()
            if ref is None:
                raise BenchmarkError(f"reference {reference} DNF on {ds}")
            out[ds] = None if base is None else base / ref
        return out

    def geomean_speedup(self, baseline: str, reference: str = "graphmat") -> float:
        """Geometric-mean speedup over completed datasets (Table 2 cells)."""
        ratios = [
            r for r in self.speedup_over(baseline, reference).values() if r
        ]
        if not ratios:
            return float("nan")
        product = 1.0
        for r in ratios:
            product *= r
        return product ** (1.0 / len(ratios))


def run_cell(
    framework: Framework, case: PreparedCase, *, warmups: int = 1
) -> CellResult:
    """Time one framework on one prepared case (with warm-up runs)."""
    args, kwargs = run_params(case)
    try:
        for _ in range(warmups):
            framework.run(case.algorithm, case.graph, *args, **kwargs)
        start = time.perf_counter()
        value, record = framework.run(
            case.algorithm, case.graph, *args, **kwargs
        )
        seconds = time.perf_counter() - start
    except BenchmarkError as exc:
        return CellResult(
            framework=framework.name,
            dataset=case.dataset,
            algorithm=case.algorithm,
            seconds=None,
            record=None,
            dnf_reason=str(exc),
        )
    return CellResult(
        framework=framework.name,
        dataset=case.dataset,
        algorithm=case.algorithm,
        seconds=seconds,
        record=record,
        value=value,
    )


def run_grid(
    algorithm: str,
    datasets: list[str],
    framework_names: list[str],
    params: dict | None = None,
    *,
    warmups: int = 1,
) -> GridResult:
    """Run the full frameworks x datasets grid for one algorithm."""
    grid = GridResult(
        algorithm=algorithm, datasets=list(datasets), frameworks=list(framework_names)
    )
    for name in framework_names:
        framework = make_framework(name)
        for dataset in datasets:
            case = prepare_case(dataset, algorithm, params)
            grid.cells[(name, dataset)] = run_cell(
                framework, case, warmups=warmups
            )
    return grid
