"""Batched multi-frontier benchmark: K concurrent queries vs K sequential runs.

Measures the amortization the SpMM engine exists for: serving K BFS
roots and K personalized-PageRank sources through
``run_graph_programs_batched`` (one edge sweep per superstep) against
the same K queries run back-to-back through the sequential engine.
Both sides use identical engine options, the same Graph500 R-MAT graph
and the same query set (the K highest-degree vertices, so every lane
does real work).

Edges/sec is defined over *useful lane edges* — the total edges the K
sequential runs process — for both sides, so the speedup equals the
wall-clock ratio for the same delivered work.  The acceptance target
(bench at scale 16, K=16: batched >= 3x sequential) is recorded in the
emitted ``BENCH_batch.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.batched import bfs_multi_source, pagerank_personalized_batch
from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_personalized_pagerank
from repro.bench.calibrate import machine_calibration
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize

#: The acceptance bar for the full-scale record (scale 16, K = 16).
SPEEDUP_TARGET = 3.0
ACCEPTANCE_SCALE = 16


def _top_degree_roots(graph, k: int) -> list[int]:
    return [int(v) for v in np.argsort(graph.out_degrees())[-k:][::-1]]


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best_seconds, best_result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - t0
        if seconds < best_seconds:
            best_seconds, best_result = seconds, result
    return best_seconds, best_result


def _workload_cell(name, sequential_fn, batched_fn, repeats):
    """Time one workload pair; returns the record cell."""
    # Warm-up builds matrix views, kernel caches and workspaces so both
    # sides measure steady-state serving cost.
    sequential_fn()
    batched_fn()
    seq_seconds, seq_results = _best_of(sequential_fn, repeats)
    bat_seconds, bat_result = _best_of(batched_fn, repeats)
    lane_edges = sum(r.stats.total_edges_processed for r in seq_results)
    cell = {
        "sequential": {
            "seconds": seq_seconds,
            "lane_edges": lane_edges,
            "edges_per_sec": lane_edges / seq_seconds if seq_seconds else 0.0,
        },
        "batched": {
            "seconds": bat_seconds,
            "supersteps": bat_result.run.n_supersteps,
            "shared_edges": bat_result.run.total_edges_processed,
            "edges_per_sec": lane_edges / bat_seconds if bat_seconds else 0.0,
            "kernels": bat_result.run.kernel_totals(),
        },
        "speedup": seq_seconds / bat_seconds if bat_seconds else 0.0,
        # Edge sweeps actually shared: sequential lane edges per batched
        # swept edge (the amortization factor the SpMM path delivers).
        "sweep_amortization": (
            lane_edges / bat_result.run.total_edges_processed
            if bat_result.run.total_edges_processed
            else 0.0
        ),
    }
    return cell, bat_result


def bench_batch(
    scale: int = 16,
    edge_factor: int = 16,
    n_lanes: int = 16,
    pr_iterations: int = 10,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Run the batched-vs-sequential comparison; returns the record."""
    graph = rmat_graph(scale=scale, edge_factor=edge_factor, seed=seed)
    sym = symmetrize(graph)
    roots = _top_degree_roots(sym, n_lanes)
    ppr_sources = _top_degree_roots(graph, n_lanes)

    record: dict = {
        "meta": {
            "benchmark": "bench_batch",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "n_lanes": n_lanes,
            "pr_iterations": pr_iterations,
            "repeats": repeats,
            "cpu_count": os.cpu_count(),
            "bfs_roots": roots,
            "ppr_sources": ppr_sources,
            "calibration_seconds": machine_calibration(),
        }
    }

    record["bfs"], bfs_result = _workload_cell(
        "bfs",
        lambda: [run_bfs(sym, r) for r in roots],
        lambda: bfs_multi_source(sym, roots),
        repeats,
    )
    # Parity spot-check rides along with every benchmark run: lane 0
    # must equal its sequential run bitwise or the record is invalid.
    ref = run_bfs(sym, roots[0])
    if not np.array_equal(ref.distances, bfs_result.lane(0)):
        raise AssertionError("batched BFS lane 0 diverged from sequential")

    def _seq_ppr():
        results = []
        for s in ppr_sources:
            results.append(
                run_personalized_pagerank(
                    graph, s, max_iterations=pr_iterations
                )
            )
        return results

    record["ppr"], ppr_result = _workload_cell(
        "ppr",
        _seq_ppr,
        lambda: pagerank_personalized_batch(
            graph, ppr_sources, max_iterations=pr_iterations
        ),
        repeats,
    )
    ref = run_personalized_pagerank(
        graph, ppr_sources[0], max_iterations=pr_iterations
    )
    if not np.array_equal(ref.ranks, ppr_result.lane(0)):
        raise AssertionError("batched PPR lane 0 diverged from sequential")

    record["speedup"] = {
        "bfs_batch_vs_sequential": record["bfs"]["speedup"],
        "ppr_batch_vs_sequential": record["ppr"]["speedup"],
    }
    record["acceptance"] = {
        "target_speedup": SPEEDUP_TARGET,
        "at_acceptance_scale": scale >= ACCEPTANCE_SCALE,
        "bfs_meets_target": record["bfs"]["speedup"] >= SPEEDUP_TARGET,
        "ppr_meets_target": record["ppr"]["speedup"] >= SPEEDUP_TARGET,
    }
    return record


def write_batch_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize(record: dict) -> str:
    """Human-readable digest of one benchmark record."""
    meta = record["meta"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges), K={meta['n_lanes']} lanes",
        "",
        f"{'workload':<6} {'seq s':>8} {'batch s':>8} {'speedup':>8} "
        f"{'amortize':>9} {'batch Medges/s':>15}",
    ]
    for name in ("bfs", "ppr"):
        cell = record[name]
        lines.append(
            f"{name:<6} {cell['sequential']['seconds']:>8.3f} "
            f"{cell['batched']['seconds']:>8.3f} {cell['speedup']:>7.2f}x "
            f"{cell['sweep_amortization']:>8.2f}x "
            f"{cell['batched']['edges_per_sec'] / 1e6:>15.2f}"
        )
    acc = record["acceptance"]
    if acc["at_acceptance_scale"]:
        status = (
            "PASS"
            if acc["bfs_meets_target"] and acc["ppr_meets_target"]
            else "FAIL"
        )
        lines.append(
            f"\nacceptance (>= {acc['target_speedup']:.0f}x at scale "
            f">= {ACCEPTANCE_SCALE}): {status}"
        )
    return "\n".join(lines)
