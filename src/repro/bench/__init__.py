"""Benchmark harness library used by the benchmarks/ pytest suite."""

from repro.bench.backends import (
    backend_configs,
    bench_backends,
    summarize,
    write_backend_record,
)
from repro.bench.batch import (
    bench_batch,
    summarize as summarize_batch,
    write_batch_record,
)
from repro.bench.calibrate import machine_calibration
from repro.bench.ingest import (
    bench_ingest,
    summarize_ingest,
    write_ingest_record,
)
from repro.bench.cases import (
    DEFAULT_PARAMS,
    PER_ITERATION_ALGORITHMS,
    PreparedCase,
    clear_cache,
    prepare_case,
    run_params,
)
from repro.bench.harness import CellResult, GridResult, run_cell, run_grid
from repro.bench.tables import (
    RESULTS_DIR,
    format_table,
    grid_table,
    write_result,
)

__all__ = [
    "backend_configs",
    "bench_backends",
    "bench_batch",
    "bench_ingest",
    "summarize_batch",
    "write_batch_record",
    "machine_calibration",
    "summarize",
    "summarize_ingest",
    "write_backend_record",
    "write_ingest_record",
    "DEFAULT_PARAMS",
    "PER_ITERATION_ALGORITHMS",
    "PreparedCase",
    "prepare_case",
    "run_params",
    "clear_cache",
    "CellResult",
    "GridResult",
    "run_cell",
    "run_grid",
    "format_table",
    "grid_table",
    "write_result",
    "RESULTS_DIR",
]
