"""Compiled-kernel tier benchmark: NumPy-threaded vs jit vs jit-threaded.

Measures what the Numba tier (:mod:`repro.exec.jit`) buys on the
engine's hottest path — PageRank per-iteration time on a Graph500 R-MAT
graph — against the best NumPy schedule (``threaded``), and verifies the
tier's defining contract in the same record:

- **parity** — the jit backends' PageRank ranks and BFS levels must be
  *bitwise* identical to the serial NumPy reference (the compiled
  kernels replay NumPy's pairwise summation order; see
  ``docs/KERNELS.md``).  Recorded as hard 1.0/0.0 booleans the CI gate
  floors at 1.0.
- **kernel attribution** — with numba installed the kernel counters
  must show ``jit-*`` kernels actually ran (no silent fallback).
- **speedup** — per-iteration speedup of ``jit`` / ``jit-threaded``
  over ``threaded``.  Only meaningful when ``meta.numba_available`` is
  true; without numba the jit backends run the same NumPy kernels and
  the ratio hovers at 1x, so the regression gate skips it.

The >= 5x scale-16 acceptance bar is asserted by this module's
:func:`acceptance_check` on full-scale records with numba present, not
by CI smoke runs (same convention as ``bench_batch``'s 3x bar).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import BFSProgram, init_bfs, run_bfs
from repro.algorithms.pagerank import PageRankProgram, init_pagerank, run_pagerank
from repro.bench.calibrate import machine_calibration
from repro.core.engine import graph_program_init, run_graph_program
from repro.core.options import EngineOptions
from repro.exec.jit import jit_tier_available
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize

#: The measured ladder: the best NumPy schedule, then the compiled tier.
JIT_CONFIGS = ("threaded", "jit", "jit-threaded")


def _default_workers() -> int:
    return max(2, min(8, os.cpu_count() or 2))


def _time_config(
    graph, program, init, options: EngineOptions, max_iterations: int,
    repeats: int,
) -> dict:
    """Best-of-``repeats`` timing of one (program, options) cell.

    The workspace is built outside the timed region (the paper's
    ``graph_program_init`` contract) and the first run is a discarded
    warm-up — for the jit backends that warm-up also absorbs Numba's
    one-time compilation cost, so the measured runs see compiled
    steady state (what the paper's native-C++ comparison measures).
    """
    run_options = options.with_(max_iterations=max_iterations)
    workspace = graph_program_init(graph, program, run_options)
    best = None
    try:
        init(graph)
        run_graph_program(graph, program, run_options, workspace=workspace)
        for _ in range(repeats):
            init(graph)
            t0 = time.perf_counter()
            stats = run_graph_program(
                graph, program, run_options, workspace=workspace
            )
            seconds = time.perf_counter() - t0
            cell = {
                "seconds": seconds,
                "supersteps": stats.n_supersteps,
                "seconds_per_iteration": (
                    seconds / stats.n_supersteps if stats.n_supersteps else 0.0
                ),
                "edges_processed": stats.total_edges_processed,
                "edges_per_sec": (
                    stats.total_edges_processed / seconds if seconds else 0.0
                ),
                "backend": stats.backend,
                "kernels": stats.kernel_totals(),
            }
            if best is None or cell["seconds"] < best["seconds"]:
                best = cell
    finally:
        workspace.close()
    return best


def _parity(graph, sym, bfs_root: int, pr_iterations: int, n_workers: int) -> dict:
    """Bitwise parity of both jit backends against the serial reference."""
    pr_ref = run_pagerank(graph, max_iterations=pr_iterations).ranks
    bfs_ref = run_bfs(sym, bfs_root).distances
    out = {}
    for backend in ("jit", "jit-threaded"):
        options = EngineOptions(backend=backend, n_workers=n_workers)
        pr_got = run_pagerank(
            graph, max_iterations=pr_iterations, options=options
        ).ranks
        bfs_got = run_bfs(sym, bfs_root, options=options).distances
        key = backend.replace("-", "_")
        out[f"pagerank_bitwise_{key}"] = (
            1.0 if np.array_equal(pr_ref, pr_got) else 0.0
        )
        out[f"bfs_bitwise_{key}"] = (
            1.0 if np.array_equal(bfs_ref, bfs_got) else 0.0
        )
    return out


def bench_jit(
    scale: int = 16,
    edge_factor: int = 16,
    pr_iterations: int = 5,
    repeats: int = 3,
    n_workers: int | None = None,
    seed: int = 0,
) -> dict:
    """Run the compiled-tier comparison; returns the JSON-ready record."""
    if n_workers is None:
        n_workers = _default_workers()
    graph = rmat_graph(scale=scale, edge_factor=edge_factor, seed=seed)
    sym = symmetrize(graph)
    out_deg = np.zeros(sym.n_vertices, dtype=np.int64)
    np.add.at(out_deg, sym.edges.rows, 1)
    bfs_root = int(out_deg.argmax())

    record: dict = {
        "meta": {
            "benchmark": "bench_jit",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": graph.n_vertices,
            "n_edges": graph.n_edges,
            "pr_iterations": pr_iterations,
            "repeats": repeats,
            "n_workers": n_workers,
            "cpu_count": os.cpu_count(),
            "numba_available": jit_tier_available(),
            "bfs_root": bfs_root,
            "calibration_seconds": machine_calibration(),
        },
        "pagerank": {},
        "bfs": {},
    }

    for name in JIT_CONFIGS:
        options = EngineOptions(backend=name, n_workers=n_workers)
        program = PageRankProgram()
        record["pagerank"][name] = _time_config(
            graph,
            program,
            lambda g, p=program: init_pagerank(g, p),
            options,
            max_iterations=pr_iterations,
            repeats=repeats,
        )
        record["bfs"][name] = _time_config(
            sym,
            BFSProgram(),
            lambda g: init_bfs(g, bfs_root),
            options,
            max_iterations=-1,
            repeats=repeats,
        )

    record["parity"] = _parity(graph, sym, bfs_root, pr_iterations, n_workers)

    threaded = record["pagerank"]["threaded"]["seconds_per_iteration"]
    record["speedup"] = {
        f"{name.replace('-', '_')}_vs_threaded": (
            threaded / record["pagerank"][name]["seconds_per_iteration"]
            if record["pagerank"][name]["seconds_per_iteration"]
            else 0.0
        )
        for name in ("jit", "jit-threaded")
    }
    record["jit_kernels_used"] = {
        name: any(
            k.startswith("jit-")
            for k in (record["pagerank"][name]["kernels"] or {})
        )
        for name in ("jit", "jit-threaded")
    }
    return record


def acceptance_check(record: dict) -> list[str]:
    """The tier's acceptance criteria; returns human-readable failures.

    Parity is unconditional.  The kernel-attribution and >= 5x
    per-iteration bars apply only when numba is installed (the tier's
    whole point); the 5x bar additionally only at full scale (>= 16),
    where per-superstep Python overhead is amortized away.
    """
    failures = []
    for name, ok in record["parity"].items():
        if ok != 1.0:
            failures.append(f"parity.{name} != 1.0 (bitwise divergence)")
    if record["meta"]["numba_available"]:
        for name, used in record["jit_kernels_used"].items():
            if not used:
                failures.append(f"{name}: no jit-* kernels in kernel counts")
        if record["meta"]["scale"] >= 16:
            speedup = record["speedup"]["jit_threaded_vs_threaded"]
            if speedup < 5.0:
                failures.append(
                    f"jit-threaded speedup {speedup:.2f}x < 5.0x acceptance bar"
                )
    return failures


def write_jit_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize(record: dict) -> str:
    """Human-readable digest of one benchmark record."""
    meta = record["meta"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges), {meta['n_workers']} workers, "
        f"numba {'available' if meta['numba_available'] else 'NOT installed'}",
        "",
        f"{'config':<14} {'PR s/iter':>10} {'PR Medges/s':>12} {'BFS s':>8}",
    ]
    for name in record["pagerank"]:
        pr = record["pagerank"][name]
        bfs = record["bfs"][name]
        lines.append(
            f"{name:<14} {pr['seconds_per_iteration']:>10.4f} "
            f"{pr['edges_per_sec'] / 1e6:>12.2f} {bfs['seconds']:>8.4f}"
        )
    lines += [
        "",
        "PR speedup vs threaded: "
        + ", ".join(
            f"{k} {v:.2f}x" for k, v in record["speedup"].items()
        ),
        "parity: "
        + ", ".join(
            f"{k}={'ok' if v == 1.0 else 'FAIL'}"
            for k, v in record["parity"].items()
        ),
    ]
    if not meta["numba_available"]:
        lines.append(
            "(jit backends fell back to NumPy kernels; install "
            "repro-graphmat[jit] for the compiled tier)"
        )
    return "\n".join(lines)
