"""Benchmark workload preparation (paper section 5.1 pipelines).

Maps (dataset, algorithm) to a ready-to-run graph: the registry proxy is
loaded once and preprocessed exactly as the paper prescribes — symmetrize
for BFS, symmetrize + upper triangle for TC, directed as-is for PageRank
and SSSP, bipartite from the generator for CF.  Prepared graphs are cached
so a benchmark session builds each one once (the paper excludes load time
from all measurements).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BenchmarkError
from repro.graph.datasets import DatasetInfo, dataset_info
from repro.graph.graph import Graph
from repro.graph.preprocess import symmetrize, to_dag

#: Default parameters per algorithm, shared by every framework so grid
#: comparisons are apples-to-apples.  PageRank/CF report time/iteration in
#: the paper, so a small fixed iteration count suffices.  BFS/SSSP roots
#: default to ``None`` = "pick the max-out-degree vertex" (Graph500
#: requires roots with edges; generated graphs may leave vertex 0
#: isolated).
DEFAULT_PARAMS: dict[str, dict] = {
    "pagerank": {"iterations": 5},
    "bfs": {"root": None},
    "sssp": {"source": None},
    "tc": {},
    "cf": {"k": 8, "iterations": 3, "gamma": 0.001, "lam": 0.05, "seed": 0},
}

#: Algorithms whose paper figures report time per iteration.
PER_ITERATION_ALGORITHMS = frozenset({"pagerank", "cf"})


@dataclass
class PreparedCase:
    """A benchmark-ready workload."""

    dataset: str
    algorithm: str
    graph: Graph
    info: DatasetInfo
    params: dict = field(default_factory=dict)


_CACHE: dict[tuple[str, str], PreparedCase] = {}


def clear_cache() -> None:
    """Drop all prepared graphs (tests use this to control memory)."""
    _CACHE.clear()


def prepare_case(
    dataset: str, algorithm: str, params: dict | None = None
) -> PreparedCase:
    """Load and preprocess ``dataset`` for ``algorithm`` (cached)."""
    if algorithm not in DEFAULT_PARAMS:
        known = ", ".join(DEFAULT_PARAMS)
        raise BenchmarkError(f"unknown algorithm {algorithm!r}; known: {known}")
    key = (dataset, algorithm)
    if key not in _CACHE:
        info = dataset_info(dataset)
        graph = info.load()
        if algorithm == "bfs":
            graph = symmetrize(graph)
        elif algorithm == "tc":
            graph = to_dag(graph)
        elif algorithm == "cf" and info.kind != "bipartite":
            raise BenchmarkError(
                f"dataset {dataset!r} is not bipartite; CF needs ratings"
            )
        _CACHE[key] = PreparedCase(
            dataset=dataset, algorithm=algorithm, graph=graph, info=info
        )
    case = _CACHE[key]
    merged = dict(DEFAULT_PARAMS[case.algorithm])
    if case.algorithm == "cf":
        merged["n_users"] = case.info.n_users
    if params:
        merged.update(params)
    for root_key in ("root", "source"):
        if merged.get(root_key, 0) is None:
            import numpy as np

            merged[root_key] = int(np.argmax(case.graph.out_degrees()))
    return PreparedCase(
        dataset=case.dataset,
        algorithm=case.algorithm,
        graph=case.graph,
        info=case.info,
        params=merged,
    )


def run_params(case: PreparedCase) -> tuple[tuple, dict]:
    """Split the case parameters into framework ``run`` args/kwargs."""
    params = dict(case.params)
    if case.algorithm == "bfs":
        return (params.pop("root"),), params
    if case.algorithm == "sssp":
        return (params.pop("source"),), params
    if case.algorithm == "cf":
        return (params.pop("n_users"),), params
    return (), params
