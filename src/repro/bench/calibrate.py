"""Machine-speed calibration for cross-host benchmark comparison.

CI perf gating compares a fresh benchmark record against a committed
baseline that was produced on a *different* machine.  Raw seconds do not
transfer, so every benchmark record embeds ``calibration_seconds``: the
best-of-N time of one fixed, deterministic NumPy workload shaped like
the engine's SpMV hot path (an indexed gather plus a segmented
reduction).  The regression checker scales the baseline's absolute
timings by the ratio of the two calibration values before applying its
tolerance, which cancels first-order machine-speed differences while
leaving genuine per-iteration regressions visible.
"""

from __future__ import annotations

import time

import numpy as np

#: Elements in the calibration workload (~16 MB working set: big enough
#: to leave L2, small enough to run in tens of milliseconds anywhere).
_CALIBRATION_SIZE = 1 << 21
_SEGMENT = 64


def machine_calibration(repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds for the fixed calibration workload."""
    n = _CALIBRATION_SIZE
    # Deterministic scatter pattern (Knuth multiplicative hash), no RNG:
    # every host times the identical memory-access sequence.
    idx = (np.arange(n, dtype=np.int64) * 2654435761) % n
    vals = np.sqrt(np.arange(1, n + 1, dtype=np.float64))
    starts = np.arange(0, n, _SEGMENT, dtype=np.int64)
    best = float("inf")
    sink = 0.0
    for _ in range(max(1, int(repeats))):
        t0 = time.perf_counter()
        gathered = np.take(vals, idx)
        reduced = np.add.reduceat(gathered, starts)
        sink += float(reduced[-1])
        best = min(best, time.perf_counter() - t0)
    assert sink == sink  # keep the computation observable
    return best
