"""Paper-style ASCII tables and result files for the benchmark harness."""

from __future__ import annotations

from pathlib import Path

from repro.bench.harness import GridResult

#: Where bench runs drop their rendered tables.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Fixed-width ASCII table (monospace, right-aligned data columns)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def _format_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "DNF"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def grid_table(grid: GridResult, title: str) -> str:
    """Render a Figure 4 panel: rows = frameworks, columns = datasets."""
    headers = ["framework"] + grid.datasets
    rows = []
    for fw in grid.frameworks:
        row = [fw]
        for ds in grid.datasets:
            row.append(_format_seconds(grid.cell(fw, ds).metric_seconds()))
        rows.append(row)
    speed_rows = []
    for fw in grid.frameworks:
        if fw == "graphmat":
            continue
        speedups = grid.speedup_over(fw)
        speed_rows.append(
            [f"GraphMat vs {fw}"]
            + [
                "DNF" if speedups[ds] is None else f"{speedups[ds]:.2f}x"
                for ds in grid.datasets
            ]
        )
    table = format_table(headers, rows, title=title)
    speed = format_table(
        ["speedup"] + grid.datasets, speed_rows, title="GraphMat speedups"
    )
    return table + "\n\n" + speed


def write_result(name: str, content: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    return path
