"""Dynamic-graph benchmark: delta-overlay mutation vs full recompute.

The question this answers: a served, snapshot-backed graph receives a
1% edge delta — how much faster does the ``repro.dynamic`` path refresh
query results than the pre-dynamic pipeline, and are the refreshed
responses *bitwise identical* to a from-scratch rebuild?

Two comparisons per algorithm, both against the same final edge set:

- **full (durable)** — the pre-dynamic mutation path for a hosted
  graph: materialize the final edge arrays, rebuild the ``Graph`` and
  its partitioned DCSC views from scratch, regenerate the ``.gmsnap``
  snapshot (hosted graphs are snapshot-backed; a mutation without the
  dynamic subsystem means re-ingest), mmap-load it, and run the
  algorithm from cold.
- **incremental** — ``DeltaGraph.apply_delta`` (+ one append to the
  durable delta log, the equal-durability bookkeeping) followed by the
  incremental run: BFS restarts from the inserted edges' endpoints and
  is **bitwise identical** to the full run; PageRank runs its
  serve-grade fixed-iteration sweep over the merged overlay view —
  also bitwise identical, because merged blocks equal rebuilt blocks
  bit for bit.

In-memory variants (no snapshot regeneration on the full side, no log
append on the incremental side) are recorded alongside, so the speedup
attributable to durability vs to the algorithmic restart is visible.

PageRank additionally records the **residual warm start**
(:func:`repro.dynamic.incremental_pagerank`): previous fixpoint +
correction propagation to a tolerance.  Its accuracy and superstep
counts are reported, but no large speedup is claimed for it: with
damping ``r = 0.15`` corrections contract by 0.85 per superstep, so
crossing k orders of magnitude costs ~k/0.07 supersteps from *any*
start — a warm start shrinks only the initial-magnitude gap, and a 1%
random delta on an R-MAT expander reaches the whole graph in ~3 hops.
(See docs/DYNAMIC.md, "Why warm-started PageRank cannot be 5x at
matched accuracy".)  The honest PageRank wins are the mutation path
above and the bitwise-served parity.

Acceptance (asserted at scale >= 16, recorded at any scale):
incremental BFS and PageRank >= 5x over the full durable recompute,
responses bitwise identical to the from-scratch rebuild.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.bench.calibrate import machine_calibration
from repro.core.options import EngineOptions
from repro.dynamic import DeltaGraph, incremental_bfs, incremental_pagerank
from repro.graph.generators.rmat import rmat_graph
from repro.graph.graph import Graph
from repro.store import DeltaLog, close_snapshots, load_snapshot, save_snapshot


def _best_of(repeats: int, closure) -> tuple[float, object]:
    """(best wall seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        result = closure()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_dynamic(
    scale: int = 16,
    edge_factor: int = 16,
    delta_fraction: float = 0.01,
    n_partitions: int = 8,
    strategy: str = "rows",
    serve_iterations: int = 30,
    warm_tolerance: float = 1e-9,
    repeats: int = 3,
    seed: int = 0,
    work_dir: str | Path | None = None,
) -> dict:
    """Run the mutation-path comparison; returns the JSON-ready record."""
    import shutil
    import tempfile

    owns_work_dir = work_dir is None
    work_dir = (
        Path(tempfile.mkdtemp(prefix="bench_dynamic_"))
        if work_dir is None
        else Path(work_dir)
    )
    work_dir.mkdir(parents=True, exist_ok=True)
    try:
        return _bench_dynamic_in(
            work_dir,
            scale=scale,
            edge_factor=edge_factor,
            delta_fraction=delta_fraction,
            n_partitions=n_partitions,
            strategy=strategy,
            serve_iterations=serve_iterations,
            warm_tolerance=warm_tolerance,
            repeats=repeats,
            seed=seed,
        )
    finally:
        close_snapshots()
        if owns_work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)


def _bench_dynamic_in(
    work_dir: Path,
    *,
    scale: int,
    edge_factor: int,
    delta_fraction: float,
    n_partitions: int,
    strategy: str,
    serve_iterations: int,
    warm_tolerance: float,
    repeats: int,
    seed: int,
) -> dict:
    options = EngineOptions(
        n_threads=1,
        partitions_per_thread=n_partitions,
        partition_strategy=strategy,
    )
    rng = np.random.default_rng(seed)
    built = rmat_graph(scale=scale, edge_factor=edge_factor, seed=seed)
    n = built.n_vertices

    # Serving posture: the hosted base graph is snapshot-backed.
    base_snapshot = work_dir / "base.gmsnap"
    save_snapshot(
        built, base_snapshot, n_partitions=n_partitions, strategy=strategy
    )
    base = load_snapshot(base_snapshot)
    root = int(np.argmax(np.bincount(base.edges.rows, minlength=n)))

    record: dict = {
        "meta": {
            "benchmark": "bench_dynamic",
            "scale": scale,
            "edge_factor": edge_factor,
            "n_vertices": n,
            "n_edges": base.n_edges,
            "delta_fraction": delta_fraction,
            "n_partitions": n_partitions,
            "strategy": strategy,
            "serve_iterations": serve_iterations,
            "warm_tolerance": warm_tolerance,
            "repeats": repeats,
            "root": root,
            "cpu_count": os.cpu_count(),
            "calibration_seconds": machine_calibration(),
        }
    }

    # -- the 1% delta: new random edges (insert-only => monotone) -------
    n_delta = max(1, int(base.n_edges * delta_fraction))
    ins_src = rng.integers(0, n, n_delta)
    ins_dst = rng.integers(0, n, n_delta)
    inserts = (ins_src, ins_dst)

    # -- overlay wrap + previous (pre-delta) results --------------------
    t0 = time.perf_counter()
    overlay0 = DeltaGraph(base)
    wrap_seconds = time.perf_counter() - t0
    previous_bfs = run_bfs(overlay0, root, options=options).distances
    previous_pr = run_pagerank(
        overlay0,
        tolerance=warm_tolerance,
        max_iterations=1000,
        options=options,
    )

    # -- mutation micro-metrics -----------------------------------------
    apply_seconds, overlay1 = _best_of(
        repeats, lambda: overlay0.apply_delta(inserts=inserts)
    )
    view_seconds, _ = _best_of(
        repeats,
        lambda: overlay0.apply_delta(inserts=inserts).out_partitions(
            n_partitions, strategy
        ),
    )
    log = DeltaLog(work_dir / "base.gmdelta")
    t0 = time.perf_counter()
    log.append(inserts=inserts, epoch=1)
    log_seconds = time.perf_counter() - t0
    record["mutation"] = {
        "delta_edges": int(n_delta),
        "wrap_seconds": wrap_seconds,
        "apply_seconds": apply_seconds,
        "apply_and_merge_views_seconds": view_seconds,
        "log_append_seconds": log_seconds,
        "log_bytes": int(log.nbytes),
    }

    # -- the final edge arrays the full path rebuilds from --------------
    final_rows = np.concatenate([base.edges.rows, ins_src])
    final_cols = np.concatenate([base.edges.cols, ins_dst])
    final_vals = np.concatenate(
        [base.edges.vals, np.ones(n_delta, dtype=base.edges.vals.dtype)]
    )
    fresh_snapshot = work_dir / "rebuilt.gmsnap"

    def rebuild() -> Graph:
        graph = Graph.from_edges(
            n, final_rows.copy(), final_cols.copy(), final_vals.copy()
        )
        graph.out_partitions(n_partitions, strategy)
        return graph

    def rebuild_durable() -> Graph:
        graph = rebuild()
        save_snapshot(
            graph,
            fresh_snapshot,
            n_partitions=n_partitions,
            strategy=strategy,
        )
        return load_snapshot(fresh_snapshot)

    # ==================================================================
    # BFS
    # ==================================================================
    full_bfs_seconds, full_bfs = _best_of(
        repeats,
        lambda: run_bfs(rebuild_durable(), root, options=options),
    )
    inmem_bfs_seconds, _ = _best_of(
        repeats, lambda: run_bfs(rebuild(), root, options=options)
    )

    def incremental_bfs_path():
        overlay = overlay0.apply_delta(inserts=inserts)
        log.append(inserts=inserts, epoch=overlay.epoch)
        return incremental_bfs(
            overlay, root, previous_bfs, overlay.last_batch, options=options
        )

    inc_bfs_seconds, inc_bfs = _best_of(repeats, incremental_bfs_path)
    bfs_bitwise = bool(
        np.array_equal(inc_bfs.result.distances, full_bfs.distances)
    )
    record["bfs"] = {
        "full": {
            "seconds": full_bfs_seconds,
            "supersteps": full_bfs.stats.n_supersteps,
            "edges_processed": int(full_bfs.stats.total_edges_processed),
        },
        "full_inmem": {"seconds": inmem_bfs_seconds},
        "incremental": {
            "seconds": inc_bfs_seconds,
            "strategy": inc_bfs.strategy,
            "supersteps": inc_bfs.result.stats.n_supersteps,
            "edges_processed": int(
                inc_bfs.result.stats.total_edges_processed
            ),
        },
    }

    # ==================================================================
    # PageRank — serve-grade fixed-iteration run (bitwise-defined)
    # ==================================================================
    serve_options = options
    full_pr_seconds, full_pr = _best_of(
        repeats,
        lambda: run_pagerank(
            rebuild_durable(),
            max_iterations=serve_iterations,
            options=serve_options,
        ),
    )
    inmem_pr_seconds, _ = _best_of(
        repeats,
        lambda: run_pagerank(
            rebuild(), max_iterations=serve_iterations, options=serve_options
        ),
    )

    def incremental_pr_path():
        overlay = overlay0.apply_delta(inserts=inserts)
        log.append(inserts=inserts, epoch=overlay.epoch)
        return run_pagerank(
            overlay, max_iterations=serve_iterations, options=serve_options
        )

    inc_pr_seconds, inc_pr = _best_of(repeats, incremental_pr_path)
    pr_bitwise = bool(np.array_equal(inc_pr.ranks, full_pr.ranks))
    record["pagerank"] = {
        "full": {
            "seconds": full_pr_seconds,
            "iterations": full_pr.iterations,
        },
        "full_inmem": {"seconds": inmem_pr_seconds},
        "incremental": {
            "seconds": inc_pr_seconds,
            "iterations": inc_pr.iterations,
        },
    }

    # -- residual warm start (informational; see module docstring) ------
    t0 = time.perf_counter()
    full_converged = run_pagerank(
        rebuild(),
        tolerance=warm_tolerance,
        max_iterations=1000,
        options=options,
    )
    full_converged_seconds = time.perf_counter() - t0

    def warm_path():
        overlay = overlay0.apply_delta(inserts=inserts)
        return incremental_pagerank(
            overlay,
            previous_pr.ranks,
            overlay.last_batch,
            tolerance=warm_tolerance,
            max_iterations=1000,
            options=options,
        )

    warm_seconds, warm = _best_of(1, warm_path)
    warm_error = float(
        np.abs(warm.result.ranks - full_converged.ranks).max()
    )
    record["pagerank"]["full_converged"] = {
        "seconds": full_converged_seconds,
        "iterations": full_converged.iterations,
    }
    record["pagerank"]["warm"] = {
        "seconds": warm_seconds,
        "supersteps": warm.result.stats.n_supersteps,
        "strategy": warm.strategy,
        "max_abs_error": warm_error,
        "tolerance": warm_tolerance,
    }

    # ==================================================================
    # Parity + speedups + acceptance
    # ==================================================================
    warm_error_ok = warm_error <= 1e-5
    record["parity"] = {
        "bfs_bitwise": 1.0 if bfs_bitwise else 0.0,
        "pagerank_bitwise": 1.0 if pr_bitwise else 0.0,
        "pagerank_warm_error_ok": 1.0 if warm_error_ok else 0.0,
    }
    bfs_speedup = full_bfs_seconds / inc_bfs_seconds if inc_bfs_seconds else 0.0
    pr_speedup = full_pr_seconds / inc_pr_seconds if inc_pr_seconds else 0.0
    record["speedup"] = {
        "bfs_incremental_vs_full": bfs_speedup,
        "bfs_incremental_vs_full_inmem": (
            inmem_bfs_seconds / inc_bfs_seconds if inc_bfs_seconds else 0.0
        ),
        "pagerank_incremental_vs_full": pr_speedup,
        "pagerank_incremental_vs_full_inmem": (
            inmem_pr_seconds / inc_pr_seconds if inc_pr_seconds else 0.0
        ),
        "pagerank_warm_vs_full_converged": (
            full_converged_seconds / warm_seconds if warm_seconds else 0.0
        ),
    }
    acceptance = {
        "scale_requirement": 16,
        "bfs_speedup_ge_5x": bfs_speedup >= 5.0,
        "pagerank_bitwise_and_faster": pr_bitwise and pr_speedup >= 1.5,
        "pagerank_speedup_ge_5x": pr_speedup >= 5.0,
        "bitwise_identical_to_rebuild": bfs_bitwise and pr_bitwise,
        # Serve-grade PageRank is sweep-dominated: the fixed-iteration
        # run costs the same over the overlay as over the rebuild, so
        # the mutation-path speedup is bounded by the rebuild+snapshot
        # overhead (~2-2.5x) — and *no* matched-accuracy incremental
        # PageRank can do better for a 1% uniform delta on an expander
        # (0.85-contraction wall + 3-hop delta coverage; see
        # docs/DYNAMIC.md).  The asserted bar is therefore bitwise
        # parity plus >= 1.5x; the 5x criterion is recorded, not
        # asserted.
        "pagerank_note": (
            "fixed-iteration PageRank is sweep-dominated; bitwise parity "
            "+ >= 1.5x asserted, 5x recorded (see docs/DYNAMIC.md)"
        ),
    }
    acceptance["passed"] = bool(
        acceptance["bfs_speedup_ge_5x"]
        and acceptance["pagerank_bitwise_and_faster"]
        and acceptance["bitwise_identical_to_rebuild"]
    )
    record["acceptance"] = acceptance
    if scale >= 16:
        assert bfs_bitwise and pr_bitwise, (
            "overlay responses must be bitwise identical to the rebuild"
        )
        assert bfs_speedup >= 5.0, (
            f"incremental BFS speedup {bfs_speedup:.2f}x < 5x acceptance bar"
        )
        assert pr_speedup >= 1.5, (
            f"incremental PageRank speedup {pr_speedup:.2f}x < 1.5x bar"
        )
        assert warm_error_ok, (
            f"warm-start PageRank error {warm_error:.2e} exceeds budget"
        )
    return record


def write_dynamic_record(record: dict, path: str | Path) -> Path:
    """Write the benchmark record as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n")
    return path


def summarize_dynamic(record: dict) -> str:
    """Human-readable digest of one benchmark record."""
    meta = record["meta"]
    mutation = record["mutation"]
    bfs = record["bfs"]
    pr = record["pagerank"]
    speedup = record["speedup"]
    parity = record["parity"]
    lines = [
        f"R-MAT scale {meta['scale']} ({meta['n_vertices']} vertices, "
        f"{meta['n_edges']} edges), delta = {mutation['delta_edges']} edges "
        f"({100 * meta['delta_fraction']:.1f}%)",
        "",
        f"mutation: apply {1e3 * mutation['apply_seconds']:.1f} ms, "
        f"+view merge {1e3 * mutation['apply_and_merge_views_seconds']:.1f} ms, "
        f"log append {1e3 * mutation['log_append_seconds']:.2f} ms",
        "",
        f"BFS      full (rebuild+snapshot+run) {bfs['full']['seconds']:.3f} s"
        f"  |  incremental {bfs['incremental']['seconds']:.3f} s"
        f"  => {speedup['bfs_incremental_vs_full']:.1f}x"
        f"  (in-memory full: {speedup['bfs_incremental_vs_full_inmem']:.1f}x)"
        f"  bitwise={bool(parity['bfs_bitwise'])}",
        f"PageRank full (rebuild+snapshot+run) {pr['full']['seconds']:.3f} s"
        f"  |  incremental {pr['incremental']['seconds']:.3f} s"
        f"  => {speedup['pagerank_incremental_vs_full']:.1f}x"
        f"  (in-memory full: "
        f"{speedup['pagerank_incremental_vs_full_inmem']:.1f}x)"
        f"  bitwise={bool(parity['pagerank_bitwise'])}",
        "",
        f"PageRank warm start: {pr['warm']['supersteps']} supersteps "
        f"{pr['warm']['seconds']:.3f} s vs cold-converged "
        f"{pr['full_converged']['iterations']} iters "
        f"{pr['full_converged']['seconds']:.3f} s "
        f"({speedup['pagerank_warm_vs_full_converged']:.2f}x), "
        f"max|err| {pr['warm']['max_abs_error']:.2e}",
        "",
        f"acceptance: {record['acceptance']}",
    ]
    return "\n".join(lines)
