"""Abstract event counters: the PMU substitute for Figure 6.

The paper reads hardware counters (instructions, stall cycles, read
bandwidth, IPC) "collected for the duration of the application run".  We
cannot read PMUs portably from Python, so each engine in this package
counts *abstract events* during real execution:

- ``user_calls`` — Python-level function/dispatch boundaries crossed
  (per-edge user-function calls in scalar engines, per-kernel calls in
  fused ones).  The analogue of instruction overhead from un-inlined
  user functions.
- ``element_ops`` — per-element arithmetic actually performed.
- ``random_accesses`` — scattered reads/writes (property gathers,
  result scatters, hash probes): the events that become memory stalls.
- ``sequential_bytes`` — streamed bytes (edge arrays): the events that
  become useful bandwidth.
- ``allocations`` — temporary buffers created (message objects, copies):
  the "redundant copying of data" the paper calls out in GraphLab.
- ``messages`` — vertex-program messages materialized.

:mod:`repro.perf.machine` converts these counts into the four Figure 6
metrics with one fixed machine model shared by all frameworks, so
cross-framework differences come only from the measured event counts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class EventCounters:
    """Mutable event-count accumulator (one per measured run)."""

    user_calls: int = 0
    element_ops: int = 0
    random_accesses: int = 0
    sequential_bytes: int = 0
    allocations: int = 0
    messages: int = 0

    def record(
        self,
        user_calls: int = 0,
        element_ops: int = 0,
        random_accesses: int = 0,
        sequential_bytes: int = 0,
        allocations: int = 0,
        messages: int = 0,
    ) -> None:
        """Add events (engines call this from their hot paths)."""
        self.user_calls += user_calls
        self.element_ops += element_ops
        self.random_accesses += random_accesses
        self.sequential_bytes += sequential_bytes
        self.allocations += allocations
        self.messages += messages

    def merge(self, other: "EventCounters") -> "EventCounters":
        """Accumulate another counter set into this one (returns self)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "EventCounters":
        return EventCounters(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )

    @property
    def total_events(self) -> int:
        return (
            self.user_calls
            + self.element_ops
            + self.random_accesses
            + self.allocations
            + self.messages
        )

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"EventCounters({parts})"
