"""Performance substrate: event counters, machine model, scaling simulation."""

from repro.perf.counters import EventCounters
from repro.perf.machine import (
    DEFAULT_MACHINE,
    MachineModel,
    PerfReport,
    derive_report,
    graph_working_set_bytes,
)
from repro.perf.parallel_model import (
    ScalingProfile,
    makespan,
    repartition_units,
    simulate_run_time,
    simulate_superstep_time,
    speedup_curve,
)
from repro.perf.timers import Timer, time_call

__all__ = [
    "EventCounters",
    "MachineModel",
    "PerfReport",
    "DEFAULT_MACHINE",
    "derive_report",
    "graph_working_set_bytes",
    "ScalingProfile",
    "makespan",
    "simulate_superstep_time",
    "simulate_run_time",
    "speedup_curve",
    "repartition_units",
    "Timer",
    "time_call",
]
