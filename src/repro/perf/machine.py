"""Machine model: converts abstract events into Figure 6 metrics.

One fixed model — loosely shaped like the paper's Xeon E5-2697 v2 (30 MB
L3, ~60 GB/s read bandwidth, ~200-cycle memory latency) — is shared by
every framework, so the *relative* Figure 6 numbers are determined
entirely by the event counts each engine actually generated.  The absolute
values are not meaningful and are never reported as such.

Conversion rules (documented in DESIGN.md's substitution table):

- instructions  = CALL_COST * user_calls + element_ops
                  + RANDOM_COST * random_accesses + ALLOC_COST * allocations
  (a user-function call that the compiler could not inline costs dispatch
  instructions; an allocation costs allocator instructions),
- stall cycles  = random_accesses * miss_rate * MISS_LATENCY
                  + allocations * ALLOC_STALL,
  where ``miss_rate`` grows with the working-set : cache ratio,
- cycles        = instructions / BASE_IPC + stall_cycles,
- read bytes    = sequential_bytes + CACHE_LINE * random_accesses * miss_rate,
- bandwidth     = read bytes / (cycles / FREQUENCY),
- IPC           = instructions / cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.counters import EventCounters


@dataclass(frozen=True)
class MachineModel:
    """Cost constants of the modelled machine (one global instance)."""

    call_cost: float = 30.0  # instructions per non-inlined call boundary
    random_cost: float = 4.0  # address-generation instructions per access
    alloc_cost: float = 60.0  # allocator instructions per allocation
    alloc_stall: float = 40.0  # allocator-induced stall cycles
    miss_latency: float = 200.0  # cycles per missed random access
    base_ipc: float = 2.0  # issue rate when not stalled
    cache_bytes: int = 30 * 1024 * 1024  # 30 MB L3
    cache_line: int = 64
    frequency_hz: float = 2.7e9
    min_miss_rate: float = 0.02

    def miss_rate(self, working_set_bytes: int) -> float:
        """Fraction of random accesses that miss the last-level cache."""
        if working_set_bytes <= 0:
            return self.min_miss_rate
        ratio = self.cache_bytes / float(working_set_bytes)
        return max(self.min_miss_rate, min(1.0, 1.0 - ratio))


@dataclass(frozen=True)
class PerfReport:
    """The four Figure 6 metrics for one run."""

    instructions: float
    stall_cycles: float
    cycles: float
    read_bytes: float
    read_bandwidth: float  # bytes per modelled second
    ipc: float

    def normalized_to(self, base: "PerfReport") -> dict[str, float]:
        """Ratios vs a baseline run (Figure 6 normalizes to GraphMat)."""

        def ratio(a: float, b: float) -> float:
            """a / b, inf on a zero baseline."""
            return a / b if b else float("inf")

        return {
            "instructions": ratio(self.instructions, base.instructions),
            "stall_cycles": ratio(self.stall_cycles, base.stall_cycles),
            "read_bandwidth": ratio(self.read_bandwidth, base.read_bandwidth),
            "ipc": ratio(self.ipc, base.ipc),
        }


DEFAULT_MACHINE = MachineModel()


def derive_report(
    counters: EventCounters,
    working_set_bytes: int,
    machine: MachineModel = DEFAULT_MACHINE,
) -> PerfReport:
    """Convert event counts into Figure 6 metrics under ``machine``."""
    miss = machine.miss_rate(working_set_bytes)
    instructions = (
        machine.call_cost * counters.user_calls
        + counters.element_ops
        + machine.random_cost * counters.random_accesses
        + machine.alloc_cost * counters.allocations
    )
    stall_cycles = (
        counters.random_accesses * miss * machine.miss_latency
        + counters.allocations * machine.alloc_stall
    )
    cycles = instructions / machine.base_ipc + stall_cycles
    read_bytes = (
        counters.sequential_bytes
        + machine.cache_line * counters.random_accesses * miss
    )
    seconds = cycles / machine.frequency_hz if cycles else 0.0
    bandwidth = read_bytes / seconds if seconds else 0.0
    ipc = instructions / cycles if cycles else 0.0
    return PerfReport(
        instructions=instructions,
        stall_cycles=stall_cycles,
        cycles=cycles,
        read_bytes=read_bytes,
        read_bandwidth=bandwidth,
        ipc=ipc,
    )


def graph_working_set_bytes(n_vertices: int, n_edges: int) -> int:
    """Rough resident bytes of a graph computation (CSR + properties)."""
    return 16 * n_edges + 24 * n_vertices
