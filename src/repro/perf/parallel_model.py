"""Simulated multicore execution: the Figure 5/7 scaling substitute.

CPython's GIL makes real thread scaling unmeasurable, so (per the
substitution rule in DESIGN.md) scaling is *simulated* from measured work:
the serial engines record how much work each schedulable unit performed
(edges per matrix partition for GraphMat, per-vertex degrees for the
task/vertex engines, per-grid-block nnz for CombBLAS), and this module
schedules those real work distributions onto T model cores.

The simulated time of one superstep on T threads is::

    time(T) = max(makespan(T), bytes / BW(T)) + sync_cost(T)

- ``makespan(T)`` — longest per-thread work under the framework's
  scheduling policy (static contiguous assignment vs dynamic greedy),
- ``BW(T)`` — shared read bandwidth, saturating as
  ``BW1 * T / (1 + beta * (T - 1))`` (the "shared resources like memory
  bandwidth" the paper blames for sub-linear scaling),
- ``sync_cost(T)`` — per-superstep barrier/communication cost growing as
  ``log2(T)`` (BSP barrier, or allreduce for the 2-D CombBLAS layout).

Framework-specific structure enters only through *observable* mechanisms:
the work-unit decomposition, the scheduling policy, CombBLAS's square
process grid constraint, and per-framework sync constants (documented in
:mod:`repro.frameworks`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import BenchmarkError


@dataclass(frozen=True)
class ScalingProfile:
    """How a framework decomposes and schedules parallel work."""

    name: str
    #: "dynamic" = greedy longest-processing-time onto least-loaded thread;
    #: "static" = contiguous equal-count assignment in unit order.
    schedule: str = "dynamic"
    #: Per-superstep synchronization cost, in work units, added per thread
    #: doubling (barrier latency, lock handshakes, MPI allreduce).
    sync_units: float = 0.0
    #: Per-work-unit scheduling overhead in work units (task pop cost).
    per_unit_overhead: float = 0.0
    #: Restrict usable threads to perfect squares (CombBLAS's 2-D grid:
    #: "the total number of processes to be a square").
    square_processes_only: bool = False
    #: Bandwidth saturation coefficient beta (0 = perfect BW scaling).
    bandwidth_beta: float = 0.05
    #: Fraction of superstep work that is bandwidth-bound streaming.
    streaming_fraction: float = 0.5

    def usable_threads(self, n_threads: int) -> int:
        """Threads the framework can actually occupy."""
        if not self.square_processes_only:
            return n_threads
        root = int(math.isqrt(n_threads))
        return max(1, root * root)


def makespan(unit_costs: np.ndarray, n_threads: int, schedule: str) -> float:
    """Longest per-thread load for the given assignment policy."""
    unit_costs = np.asarray(unit_costs, dtype=np.float64)
    if n_threads < 1:
        raise BenchmarkError(f"n_threads must be >= 1, got {n_threads}")
    if unit_costs.size == 0:
        return 0.0
    if n_threads == 1:
        return float(unit_costs.sum())
    if schedule == "static":
        # Contiguous equal-count chunks, in unit order (OpenMP static).
        bounds = np.linspace(0, unit_costs.size, n_threads + 1).astype(int)
        loads = [
            float(unit_costs[bounds[t] : bounds[t + 1]].sum())
            for t in range(n_threads)
        ]
        return max(loads)
    if schedule == "dynamic":
        # Greedy LPT: sort descending, place on the least-loaded thread.
        loads = np.zeros(n_threads, dtype=np.float64)
        for cost in np.sort(unit_costs)[::-1]:
            loads[loads.argmin()] += cost
        return float(loads.max())
    raise BenchmarkError(f"unknown schedule {schedule!r}")


def simulate_superstep_time(
    unit_costs: np.ndarray,
    n_threads: int,
    profile: ScalingProfile,
) -> float:
    """Simulated time (in work units) of one superstep on T threads."""
    threads = profile.usable_threads(n_threads)
    costs = np.asarray(unit_costs, dtype=np.float64)
    if profile.per_unit_overhead:
        costs = costs + profile.per_unit_overhead
    compute = makespan(costs, threads, profile.schedule)
    total = float(costs.sum())
    bw_scale = threads / (1.0 + profile.bandwidth_beta * (threads - 1))
    streamed = total * profile.streaming_fraction / bw_scale
    time = max(compute, streamed)
    if threads > 1 and profile.sync_units:
        time += profile.sync_units * math.log2(threads)
    return time


def simulate_run_time(
    per_iteration_units: list[np.ndarray],
    n_threads: int,
    profile: ScalingProfile,
) -> float:
    """Simulated total time of a run given per-superstep work profiles."""
    return sum(
        simulate_superstep_time(units, n_threads, profile)
        for units in per_iteration_units
    )


def speedup_curve(
    per_iteration_units: list[np.ndarray],
    thread_counts: list[int],
    profile: ScalingProfile,
) -> dict[int, float]:
    """Speedup over single-thread simulated time for each thread count.

    This is the Figure 5 series: ``speedup(T) = time(1) / time(T)`` with
    both times coming from the same measured work distributions.
    """
    base = simulate_run_time(per_iteration_units, 1, profile)
    curve: dict[int, float] = {}
    for t in thread_counts:
        time_t = simulate_run_time(per_iteration_units, t, profile)
        curve[t] = base / time_t if time_t else float("inf")
    return curve


def repartition_units(unit_costs: np.ndarray, n_partitions: int) -> np.ndarray:
    """Re-split a cost distribution into ``n_partitions`` contiguous bins.

    Used to model "number of graph partitions equals number of threads"
    (load balancing off) versus over-partitioning: the measured per-edge
    work is conserved, only the schedulable granularity changes.
    """
    unit_costs = np.asarray(unit_costs, dtype=np.float64)
    if n_partitions < 1:
        raise BenchmarkError(f"n_partitions must be >= 1, got {n_partitions}")
    if unit_costs.size == 0:
        return np.zeros(n_partitions, dtype=np.float64)
    bounds = np.linspace(0, unit_costs.size, n_partitions + 1).astype(int)
    return np.asarray(
        [
            unit_costs[bounds[p] : bounds[p + 1]].sum()
            for p in range(n_partitions)
        ],
        dtype=np.float64,
    )
