"""Small timing utilities shared by benchmarks and examples."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    seconds: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


def time_call(fn, *args, repeats: int = 1, **kwargs) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``fn(*args, **kwargs)`` plus result."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result
