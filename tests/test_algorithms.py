"""Algorithm correctness vs independent references (networkx / scipy)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.sparse import csgraph

from repro.algorithms import (
    in_degrees_via_spmv,
    out_degrees_via_spmv,
    run_bfs,
    run_collaborative_filtering,
    run_connected_components,
    run_pagerank,
    run_sssp,
    run_triangle_count,
)
from repro.core.options import EngineOptions
from repro.graph.generators import (
    BipartiteSpec,
    bipartite_rating_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    figure3_graph,
    gnm_random_graph,
    path_graph,
    rmat_graph,
    star_graph,
)
from repro.graph.preprocess import symmetrize, to_dag, with_random_weights

from tests.conftest import as_networkx

PATHS = [
    EngineOptions(use_bitvector=False, fused=False),
    EngineOptions(use_bitvector=True, fused=False),
    EngineOptions(use_bitvector=True, fused=True),
]
PATH_IDS = ["naive", "bitvector", "fused"]


class TestDegrees:
    def test_figure1(self):
        graph = figure1_graph()
        assert in_degrees_via_spmv(graph).tolist() == [1.0, 1.0, 2.0, 2.0]
        assert out_degrees_via_spmv(graph).tolist() == [3.0, 1.0, 1.0, 1.0]

    def test_star(self):
        graph = star_graph(5, outward=True)
        assert in_degrees_via_spmv(graph).tolist() == [0.0] + [1.0] * 5
        assert out_degrees_via_spmv(graph).tolist() == [5.0] + [0.0] * 5


class TestPageRank:
    def test_cycle_fixed_point(self):
        result = run_pagerank(cycle_graph(7), max_iterations=20)
        assert np.allclose(result.ranks, 1.0)

    def test_path_closed_form(self):
        # Head of a 3-path keeps rank 1; each next vertex gets
        # r + (1-r) * previous.
        r = 0.15
        result = run_pagerank(path_graph(3), r=r, max_iterations=50)
        expected1 = r + (1 - r) * 1.0
        expected2 = r + (1 - r) * expected1
        assert result.ranks[0] == pytest.approx(1.0)
        assert result.ranks[1] == pytest.approx(expected1)
        assert result.ranks[2] == pytest.approx(expected2)

    @pytest.mark.parametrize("options", PATHS, ids=PATH_IDS)
    def test_paths_agree(self, options, rmat_small):
        baseline = run_pagerank(rmat_small, max_iterations=5).ranks
        got = run_pagerank(rmat_small, max_iterations=5, options=options).ranks
        assert np.allclose(got, baseline)

    def test_matches_power_iteration_reference(self, rmat_small):
        graph = rmat_small
        result = run_pagerank(graph, max_iterations=8)
        # Independent dense power iteration with identical conventions.
        n = graph.n_vertices
        dense = np.zeros((n, n))
        coo = graph.edges
        dense[coo.rows, coo.cols] = 1.0
        out_deg = dense.sum(axis=1)
        inv = np.divide(1.0, out_deg, out=np.zeros(n), where=out_deg > 0)
        has_in = dense.sum(axis=0) > 0
        ranks = np.ones(n)
        for _ in range(8):
            sums = dense.T @ (ranks * inv)
            ranks = np.where(has_in, 0.15 + 0.85 * sums, ranks)
        assert np.allclose(result.ranks, ranks)

    def test_convergence_mode_stops_early(self, rmat_small):
        result = run_pagerank(
            rmat_small, max_iterations=500, tolerance=1e-8
        )
        assert result.stats.converged
        assert result.iterations < 500

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            run_pagerank(cycle_graph(3), r=1.5)


class TestBFS:
    @pytest.mark.parametrize("options", PATHS, ids=PATH_IDS)
    def test_matches_networkx(self, options, rmat_sym):
        result = run_bfs(rmat_sym, 0, options=options)
        expected = nx.single_source_shortest_path_length(
            as_networkx(rmat_sym), 0
        )
        for v in range(rmat_sym.n_vertices):
            if v in expected:
                assert result.distances[v] == expected[v]
            else:
                assert np.isinf(result.distances[v])

    def test_unreachable_stay_infinite(self):
        graph = path_graph(4)  # directed 0->1->2->3
        result = run_bfs(graph, 2)
        assert result.distances.tolist() == [np.inf, np.inf, 0.0, 1.0]
        assert result.reached == 2
        assert result.max_level == 1

    def test_root_only_graph(self):
        graph = star_graph(3, outward=False)  # leaves point at hub
        result = run_bfs(graph, 0)
        assert result.distances[0] == 0.0
        assert result.reached == 1


class TestSSSP:
    def test_figure3(self):
        result = run_sssp(figure3_graph(), 0)
        assert result.distances.tolist() == [0.0, 1.0, 2.0, 2.0, 4.0]

    @pytest.mark.parametrize("options", PATHS, ids=PATH_IDS)
    def test_matches_scipy_dijkstra(self, options, rmat_weighted):
        result = run_sssp(rmat_weighted, 0, options=options)
        expected = csgraph.dijkstra(
            rmat_weighted.edges.to_scipy().tocsr(), indices=0
        )
        assert np.allclose(result.distances, expected, equal_nan=True)

    def test_weighted_path(self):
        graph = path_graph(4, weighted=True)  # weights 1, 2, 3
        result = run_sssp(graph, 0)
        assert result.distances.tolist() == [0.0, 1.0, 3.0, 6.0]


class TestTriangleCount:
    def test_k4_has_four(self):
        assert run_triangle_count(to_dag(complete_graph(4))).total == 4

    def test_k5_has_ten(self):
        assert run_triangle_count(to_dag(complete_graph(5))).total == 10

    def test_cycle_has_none(self):
        assert run_triangle_count(to_dag(cycle_graph(5))).total == 0

    @pytest.mark.parametrize("options", PATHS, ids=PATH_IDS)
    def test_matches_networkx(self, options, rmat_small):
        dag = to_dag(rmat_small)
        got = run_triangle_count(dag, options=options).total
        undirected = as_networkx(rmat_small, directed=False)
        expected = sum(nx.triangles(undirected).values()) // 3
        assert got == expected

    def test_per_vertex_counts_sum(self, rmat_small):
        result = run_triangle_count(to_dag(rmat_small))
        assert result.per_vertex.sum() == result.total


class TestCollaborativeFiltering:
    def test_rmse_decreases(self, bipartite_small):
        graph, n_users = bipartite_small
        result = run_collaborative_filtering(
            graph, n_users, k=4, gamma=0.01, lam=0.01, iterations=10, seed=3
        )
        assert result.rmse_history[-1] < result.rmse_history[0]
        assert result.final_rmse == result.rmse_history[-1]

    def test_factor_shapes(self, bipartite_small):
        graph, n_users = bipartite_small
        result = run_collaborative_filtering(
            graph, n_users, k=6, iterations=2
        )
        assert result.user_factors.shape == (n_users, 6)
        assert result.item_factors.shape == (
            graph.n_vertices - n_users,
            6,
        )

    @pytest.mark.parametrize("options", PATHS[1:], ids=PATH_IDS[1:])
    def test_paths_agree(self, options, bipartite_small):
        graph, n_users = bipartite_small
        baseline = run_collaborative_filtering(
            graph, n_users, k=3, iterations=3, seed=5
        ).factors
        got = run_collaborative_filtering(
            graph, n_users, k=3, iterations=3, seed=5, options=options
        ).factors
        assert np.allclose(got, baseline)

    def test_matches_dense_gradient_descent(self, bipartite_small):
        """One engine GD step equals the dense matrix GD update."""
        graph, n_users = bipartite_small
        k, gamma, lam, seed = 3, 0.005, 0.02, 9
        result = run_collaborative_filtering(
            graph, n_users, k=k, gamma=gamma, lam=lam, iterations=1, seed=seed
        )
        rng = np.random.default_rng(seed)
        factors = rng.uniform(0.0, 0.1, size=(graph.n_vertices, k))
        coo = graph.edges
        errors = coo.vals - np.einsum(
            "ij,ij->i", factors[coo.rows], factors[coo.cols]
        )
        grad = np.zeros_like(factors)
        np.add.at(grad, coo.rows, errors[:, None] * factors[coo.cols])
        np.add.at(grad, coo.cols, errors[:, None] * factors[coo.rows])
        touched = np.zeros(graph.n_vertices, dtype=bool)
        touched[coo.rows] = True
        touched[coo.cols] = True
        expected = np.where(
            touched[:, None],
            factors + gamma * (grad - lam * factors),
            factors,
        )
        assert np.allclose(result.factors, expected)

    def test_bad_n_users(self, bipartite_small):
        graph, _ = bipartite_small
        with pytest.raises(Exception):
            run_collaborative_filtering(graph, 0)


class TestConnectedComponents:
    def test_matches_networkx(self, rmat_small):
        result = run_connected_components(rmat_small)
        undirected = as_networkx(rmat_small, directed=False)
        expected = list(nx.connected_components(undirected))
        assert result.n_components == len(expected)
        for component in expected:
            labels = {int(result.labels[v]) for v in component}
            assert len(labels) == 1

    def test_two_islands(self):
        from repro.graph.builder import build_graph

        graph = build_graph([(0, 1), (2, 3)], n_vertices=4)
        result = run_connected_components(graph)
        assert result.n_components == 2
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] == result.labels[3]


@given(seed=st.integers(0, 2**16), scale=st.integers(4, 7))
@settings(max_examples=12, deadline=None)
def test_sssp_property_random_graphs(seed, scale):
    """SSSP distances always match Dijkstra on random weighted RMATs."""
    graph = with_random_weights(
        rmat_graph(scale, 6, seed=seed), seed=seed + 1
    )
    result = run_sssp(graph, 0)
    expected = csgraph.dijkstra(graph.edges.to_scipy().tocsr(), indices=0)
    assert np.allclose(result.distances, expected, equal_nan=True)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=12, deadline=None)
def test_triangles_property_random_graphs(seed):
    graph = gnm_random_graph(40, 160, seed=seed)
    got = run_triangle_count(to_dag(graph)).total
    expected = (
        sum(nx.triangles(as_networkx(graph, directed=False)).values()) // 3
    )
    assert got == expected
