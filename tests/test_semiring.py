"""Semiring law tests (scalar and vectorized forms must agree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.semiring import (
    MIN_FIRST,
    MIN_PLUS,
    OR_AND,
    PLUS_FIRST,
    PLUS_TIMES,
    STANDARD_SEMIRINGS,
    get_semiring,
)

NUMERIC_SEMIRINGS = [PLUS_TIMES, MIN_PLUS, MIN_FIRST, PLUS_FIRST]

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRegistry:
    def test_all_registered(self):
        assert len(STANDARD_SEMIRINGS) == 6

    def test_lookup(self):
        assert get_semiring("min-plus") is MIN_PLUS

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown semiring"):
            get_semiring("times-times")

    def test_repr(self):
        assert "plus-times" in repr(PLUS_TIMES)


class TestReduceArray:
    def test_empty_returns_identity(self):
        assert MIN_PLUS.reduce_array(np.array([])) == np.inf
        assert PLUS_TIMES.reduce_array(np.array([])) == 0.0

    def test_reduce(self):
        assert PLUS_TIMES.reduce_array(np.array([1.0, 2.0, 3.0])) == 6.0
        assert MIN_PLUS.reduce_array(np.array([3.0, 1.0])) == 1.0


@pytest.mark.parametrize("semiring", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
@given(a=finite_floats, b=finite_floats, c=finite_floats)
@settings(max_examples=50, deadline=None)
def test_add_commutative_associative(semiring, a, b, c):
    assert semiring.add(a, b) == pytest.approx(semiring.add(b, a))
    left = semiring.add(semiring.add(a, b), c)
    right = semiring.add(a, semiring.add(b, c))
    assert left == pytest.approx(right, rel=1e-9, abs=1e-6)


@pytest.mark.parametrize("semiring", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
@given(a=finite_floats)
@settings(max_examples=30, deadline=None)
def test_add_identity_is_neutral(semiring, a):
    assert semiring.add(a, semiring.add_identity) == pytest.approx(a)


@pytest.mark.parametrize("semiring", NUMERIC_SEMIRINGS, ids=lambda s: s.name)
@given(
    messages=st.lists(finite_floats, min_size=1, max_size=20),
    edges=st.lists(finite_floats, min_size=1, max_size=20),
)
@settings(max_examples=40, deadline=None)
def test_vectorized_matches_scalar(semiring, messages, edges):
    n = min(len(messages), len(edges))
    msg = np.asarray(messages[:n])
    edge = np.asarray(edges[:n])
    vectorized = np.asarray(semiring.multiply_ufunc(msg, edge), dtype=float)
    scalar = np.asarray(
        [semiring.multiply(m, e) for m, e in zip(msg, edge)], dtype=float
    )
    assert np.allclose(vectorized, scalar)


def test_boolean_semiring():
    assert OR_AND.add(False, True) is True
    assert OR_AND.multiply(True, False) is False
    assert OR_AND.add_identity is False
    out = OR_AND.multiply_ufunc(
        np.array([True, True]), np.array([True, False])
    )
    assert out.tolist() == [True, False]
