"""Smoke-run every example script: the docs must not rot silently.

Each ``examples/*.py`` is executed as a subprocess exactly the way the
README tells users to run it (``python examples/<name>.py`` with the
package importable); a non-zero exit or a traceback fails the suite.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ directory lost its scripts"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script: Path):
    env = os.environ.copy()
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "Traceback" not in result.stderr
    # Every example prints something; silent success is a broken example.
    assert result.stdout.strip()
