"""Generator tests: RMAT, bipartite ratings, road networks, datasets registry."""

import numpy as np
import pytest

from repro.errors import DatasetError, GraphError
from repro.graph.datasets import (
    dataset_info,
    dataset_names,
    datasets_for_algorithm,
    load_dataset,
)
from repro.graph.generators import (
    GRAPH500_PARAMS,
    TRIANGLE_PARAMS,
    BipartiteSpec,
    RmatParams,
    bipartite_rating_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    is_bipartite_user_item,
    path_graph,
    rmat_edges,
    rmat_graph,
    road_graph,
    star_graph,
    user_item_split,
)


class TestRmat:
    def test_edge_count(self):
        src, dst = rmat_edges(8, 4, seed=1)
        assert src.shape[0] == 4 * 256
        assert dst.shape[0] == src.shape[0]

    def test_vertex_range(self):
        src, dst = rmat_edges(6, 4, seed=2)
        assert src.min() >= 0 and src.max() < 64
        assert dst.min() >= 0 and dst.max() < 64

    def test_deterministic(self):
        a = rmat_edges(7, 4, seed=3)
        b = rmat_edges(7, 4, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_output(self):
        a = rmat_edges(7, 4, seed=3)
        b = rmat_edges(7, 4, seed=4)
        assert not np.array_equal(a[0], b[0])

    def test_graph_has_no_self_loops(self):
        g = rmat_graph(7, 4, seed=5)
        assert np.all(g.edges.rows != g.edges.cols)

    def test_weighted_graph(self):
        g = rmat_graph(7, 4, seed=5, weighted=True, weight_range=(1.0, 2.0))
        assert g.edges.vals.min() >= 1.0
        assert g.edges.vals.max() < 2.0

    def test_skew_produces_hubs(self):
        """RMAT degree distribution is heavy-tailed vs uniform random."""
        g = rmat_graph(10, 8, seed=6)
        degrees = g.out_degrees()
        assert degrees.max() > 5 * max(1.0, degrees.mean())

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            RmatParams(0.6, 0.3, 0.3)
        with pytest.raises(GraphError):
            rmat_graph(0, 4)
        with pytest.raises(GraphError):
            rmat_graph(4, 0)

    def test_param_presets(self):
        assert GRAPH500_PARAMS.a == 0.57
        assert TRIANGLE_PARAMS.a == 0.45
        assert abs(GRAPH500_PARAMS.d - 0.05) < 1e-12


class TestBipartite:
    def test_structure(self):
        spec = BipartiteSpec(n_users=50, n_items=10, ratings_per_user=5)
        g = bipartite_rating_graph(spec, seed=1)
        assert g.n_vertices == 60
        assert is_bipartite_user_item(g, 50)

    def test_ratings_in_range(self):
        spec = BipartiteSpec(n_users=50, n_items=10, ratings_per_user=5)
        g = bipartite_rating_graph(spec, seed=1)
        assert g.edges.vals.min() >= 1.0
        assert g.edges.vals.max() <= 5.0

    def test_no_duplicate_pairs(self):
        spec = BipartiteSpec(n_users=30, n_items=8, ratings_per_user=6)
        g = bipartite_rating_graph(spec, seed=2)
        keys = g.edges.rows * 1000 + g.edges.cols
        assert np.unique(keys).shape[0] == keys.shape[0]

    def test_item_popularity_skewed(self):
        spec = BipartiteSpec(
            n_users=400, n_items=50, ratings_per_user=10, item_skew=1.2
        )
        g = bipartite_rating_graph(spec, seed=3)
        item_degrees = np.bincount(g.edges.cols - 400, minlength=50)
        assert item_degrees.max() > 3 * item_degrees.mean()

    def test_user_item_split(self):
        spec = BipartiteSpec(n_users=5, n_items=3, ratings_per_user=2)
        g = bipartite_rating_graph(spec, seed=1)
        users, items = user_item_split(g, 5)
        assert users.tolist() == [0, 1, 2, 3, 4]
        assert items.tolist() == [5, 6, 7]
        with pytest.raises(GraphError):
            user_item_split(g, 0)

    def test_invalid_spec(self):
        with pytest.raises(GraphError):
            BipartiteSpec(n_users=0, n_items=5, ratings_per_user=2)
        with pytest.raises(GraphError):
            BipartiteSpec(n_users=5, n_items=5, ratings_per_user=0)


class TestRoad:
    def test_size(self):
        g = road_graph(10, 8, seed=1)
        assert g.n_vertices == 80

    def test_low_average_degree(self):
        g = road_graph(20, 20, seed=2)
        avg_degree = g.n_edges / g.n_vertices
        assert avg_degree < 5.0  # road-like, not social-like

    def test_bidirectional(self):
        g = road_graph(8, 8, seed=3)
        keys = set(zip(g.edges.rows.tolist(), g.edges.cols.tolist()))
        assert all((b, a) in keys for a, b in keys)

    def test_high_diameter(self):
        """Road grids have diameter ~width+height, unlike RMAT."""
        from repro.algorithms import run_bfs
        from repro.graph.preprocess import largest_connected_component

        g = largest_connected_component(road_graph(16, 16, seed=4))
        result = run_bfs(g, 0)
        assert result.max_level > 10

    def test_invalid(self):
        with pytest.raises(GraphError):
            road_graph(1, 5)
        with pytest.raises(GraphError):
            road_graph(5, 5, keep=0.0)


class TestDeterministicTopologies:
    def test_path(self):
        g = path_graph(4)
        assert g.n_edges == 3

    def test_cycle(self):
        g = cycle_graph(4)
        assert g.n_edges == 4

    def test_star(self):
        assert star_graph(3).n_edges == 3
        assert star_graph(3, outward=False).n_edges == 3

    def test_complete(self):
        g = complete_graph(4)
        assert g.n_edges == 12

    def test_gnm_exact_edges(self):
        g = gnm_random_graph(20, 50, seed=1)
        assert g.n_edges == 50

    def test_gnm_bounds(self):
        with pytest.raises(GraphError):
            gnm_random_graph(3, 100)

    def test_invalid_sizes(self):
        for bad in (
            lambda: path_graph(0),
            lambda: cycle_graph(1),
            lambda: star_graph(0),
            lambda: complete_graph(1),
        ):
            with pytest.raises(GraphError):
                bad()


class TestDatasetRegistry:
    def test_all_table1_rows_present(self):
        names = dataset_names()
        for expected in (
            "rmat_20",
            "rmat_23",
            "rmat_24",
            "livejournal",
            "facebook",
            "wikipedia",
            "flickr",
            "netflix",
            "synthetic_cf",
            "usa_road",
        ):
            assert expected in names

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            dataset_info("orkut")

    def test_paper_metadata_recorded(self):
        info = dataset_info("livejournal")
        assert info.paper_vertices == 4_847_571
        assert info.paper_edges == 68_993_773

    def test_algorithm_mapping_matches_table1(self):
        tc_sets = {d.name for d in datasets_for_algorithm("tc")}
        assert tc_sets == {"rmat_20", "livejournal", "facebook", "wikipedia"}
        sssp_sets = {d.name for d in datasets_for_algorithm("sssp")}
        assert sssp_sets == {"rmat_23", "rmat_24", "flickr", "usa_road"}
        cf_sets = {d.name for d in datasets_for_algorithm("cf")}
        assert cf_sets == {"netflix", "synthetic_cf"}

    def test_load_is_deterministic(self):
        a = load_dataset("facebook")
        b = load_dataset("facebook")
        assert a.n_edges == b.n_edges

    def test_bipartite_datasets_are_bipartite(self):
        info = dataset_info("netflix")
        g = info.load()
        assert is_bipartite_user_item(g, info.n_users)

    def test_road_dataset_low_degree(self):
        g = load_dataset("usa_road")
        assert g.n_edges / g.n_vertices < 5.0

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_dataset_loads(self, name):
        g = load_dataset(name)
        assert g.n_vertices > 0
        assert g.n_edges > 0

    def test_scale_override(self, monkeypatch):
        base = load_dataset("facebook").n_vertices
        monkeypatch.setenv("REPRO_SCALE_OVERRIDE", "1")
        bigger = load_dataset("facebook").n_vertices
        assert bigger == base * 2

    def test_scale_override_invalid_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE_OVERRIDE", "lots")
        assert load_dataset("facebook").n_vertices > 0
