"""Tests for ``repro.dynamic``: DeltaGraph overlays, incremental
recompute, and the ``repro.store`` delta log."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    run_bfs,
    run_connected_components,
    run_label_propagation,
    run_pagerank,
    run_sssp,
)
from repro.core.engine import run_graph_program
from repro.core.options import EngineOptions
from repro.dynamic import (
    DeltaGraph,
    incremental_bfs,
    incremental_components,
    incremental_pagerank,
    incremental_sssp,
)
from repro.errors import GraphError, IOFormatError
from repro.graph.generators import rmat_graph
from repro.graph.graph import Graph
from repro.graph.preprocess import symmetrize, with_random_weights
from repro.matrix.delta import dedup_last_by_key, merge_sorted_unique
from repro.store import DeltaLog, compact_delta_graph, load_snapshot, save_snapshot


def edge_dict(graph: Graph) -> dict[tuple[int, int], float]:
    coo = graph.edges
    return {
        (int(coo.rows[k]), int(coo.cols[k])): float(coo.vals[k])
        for k in range(coo.nnz)
    }


def rebuild(graph: Graph) -> Graph:
    """A from-scratch Graph over the same final edge set."""
    coo = graph.edges
    return Graph.from_edges(
        graph.n_vertices,
        coo.rows.copy(),
        coo.cols.copy(),
        coo.vals.copy(),
        dedup=False,
    )


@pytest.fixture
def weighted_graph():
    return with_random_weights(rmat_graph(8, 8, seed=42), seed=7)


# ----------------------------------------------------------------------
# Sorted-merge primitives
# ----------------------------------------------------------------------
class TestMergePrimitives:
    def test_dedup_last_keeps_final_occurrence(self):
        keys = np.array([5, 2, 5, 9, 2], dtype=np.int64)
        vals = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        out_keys, out_vals = dedup_last_by_key(keys, vals)
        assert out_keys.tolist() == [2, 5, 9]
        assert out_vals.tolist() == [50.0, 30.0, 40.0]

    def test_merge_sorted_unique_upsert_and_delete(self):
        base = np.array([1, 3, 5, 7], dtype=np.int64)
        ins = np.array([3, 4], dtype=np.int64)  # replace 3, add 4
        dels = np.array([7, 9], dtype=np.int64)  # remove 7; 9 absent
        merged, keep, positions, hit = merge_sorted_unique(base, ins, dels)
        assert merged.tolist() == [1, 3, 4, 5]
        assert keep.tolist() == [True, False, True, False]
        assert hit.tolist() == [True, False]
        assert positions.tolist() == [1, 1]


# ----------------------------------------------------------------------
# DeltaGraph semantics
# ----------------------------------------------------------------------
class TestDeltaGraphSemantics:
    def test_epoch_zero_matches_base(self, weighted_graph):
        dg = DeltaGraph(weighted_graph)
        assert dg.epoch == 0
        assert dg.n_edges == weighted_graph.n_edges
        assert edge_dict(dg) == edge_dict(weighted_graph)
        # epoch-0 views alias the base's (zero copies)
        assert dg.out_partitions(4, "rows") is weighted_graph.out_partitions(
            4, "rows"
        )

    def test_insert_delete_replace_semantics(self):
        g = Graph.from_edges(
            4,
            np.array([0, 1, 2]),
            np.array([1, 2, 3]),
            np.array([1.0, 2.0, 3.0]),
        )
        dg = DeltaGraph(g)
        new = dg.apply_delta(
            inserts=([0, 3, 0], [1, 0, 2], [9.0, 4.0, 5.0]),
            deletes=([1, 3], [2, 1]),  # (1,2) exists; (3,1) does not
        )
        assert new.epoch == 1
        assert dg.epoch == 0  # persistent: receiver untouched
        assert edge_dict(dg) == edge_dict(g)
        assert edge_dict(new) == {
            (0, 1): 9.0,  # replaced
            (2, 3): 3.0,  # untouched
            (3, 0): 4.0,  # inserted
            (0, 2): 5.0,  # inserted
        }
        batch = new.last_batch
        assert batch.n_inserted == 2
        assert batch.n_replaced == 1
        assert batch.n_deleted == 1
        assert batch.noop_deletes == 1
        assert batch.old_vals[~batch.new_mask].tolist() == [1.0]

    def test_delete_then_insert_same_key_nets_to_insert(self):
        g = Graph.from_edges(3, np.array([0]), np.array([1]), np.array([2.0]))
        new = DeltaGraph(g).apply_delta(
            inserts=([0], [1], [7.0]), deletes=([0], [1])
        )
        assert edge_dict(new) == {(0, 1): 7.0}
        assert new.last_batch.n_deleted == 0

    def test_duplicate_batch_inserts_keep_last(self):
        g = Graph.from_edges(3, np.array([0]), np.array([1]), np.array([1.0]))
        new = DeltaGraph(g).apply_delta(
            inserts=([0, 0], [2, 2], [5.0, 6.0])
        )
        assert edge_dict(new)[(0, 2)] == 6.0

    def test_degrees_maintained_incrementally(self, weighted_graph):
        rng = np.random.default_rng(0)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=(rng.integers(0, n, 40), rng.integers(0, n, 40),
                     rng.uniform(1, 9, 40)),
            deletes=(weighted_graph.edges.rows[:25],
                     weighted_graph.edges.cols[:25]),
        )
        ref = rebuild(dg)
        assert np.array_equal(dg.out_degrees(), ref.out_degrees())
        assert np.array_equal(dg.in_degrees(), ref.in_degrees())
        assert dg.n_edges == ref.n_edges

    def test_chained_epochs_accumulate(self, weighted_graph):
        rng = np.random.default_rng(1)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph)
        reference = edge_dict(weighted_graph)
        for step in range(4):
            ins = (rng.integers(0, n, 10), rng.integers(0, n, 10),
                   rng.uniform(1, 9, 10))
            keys = list(reference)
            picks = rng.choice(len(keys), 5, replace=False)
            dels = ([keys[p][0] for p in picks], [keys[p][1] for p in picks])
            dg = dg.apply_delta(inserts=ins, deletes=dels)
            for s, d in zip(*dels):
                reference.pop((int(s), int(d)), None)
            for s, d, w in zip(*ins):
                reference[(int(s), int(d))] = float(w)
            assert dg.epoch == step + 1
            assert edge_dict(dg) == reference

    def test_vertex_range_and_dtype_validation(self, weighted_graph):
        dg = DeltaGraph(weighted_graph)
        n = weighted_graph.n_vertices
        with pytest.raises(GraphError):
            dg.apply_delta(inserts=([n], [0]))
        with pytest.raises(GraphError):
            dg.apply_delta(deletes=([-1], [0]))
        unweighted = Graph.from_edges(3, np.array([0]), np.array([1]))
        with pytest.raises(GraphError):
            # float weights into an int64-valued base: not same-kind
            DeltaGraph(unweighted).apply_delta(inserts=([0], [2], [1.5]))

    def test_wrap_requires_plain_base(self, weighted_graph):
        dg = DeltaGraph(weighted_graph)
        with pytest.raises(GraphError):
            DeltaGraph(dg)

    def test_graph_overlay_convenience(self, weighted_graph):
        dg = weighted_graph.overlay()
        assert isinstance(dg, DeltaGraph)
        assert dg.epoch == 0 and dg.base is weighted_graph

    def test_cache_key_tracks_content(self, weighted_graph):
        dg = DeltaGraph(weighted_graph)
        d1 = dg.apply_delta(inserts=([0], [1], [5.0]))
        d2 = dg.apply_delta(inserts=([0], [1], [5.0]))
        d3 = dg.apply_delta(inserts=([0], [1], [6.0]))
        assert d1.cache_key() == d2.cache_key()
        assert d1.cache_key() != d3.cache_key()
        assert d1.cache_key() != dg.cache_key()


# ----------------------------------------------------------------------
# View parity: merged blocks bitwise-identical to a rebuild
# ----------------------------------------------------------------------
class TestViewParity:
    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_blocks_bitwise_equal_rebuild(self, weighted_graph, direction):
        rng = np.random.default_rng(5)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=(rng.integers(0, n, 60), rng.integers(0, n, 60),
                     rng.uniform(1, 9, 60)),
            deletes=(weighted_graph.edges.rows[10:40],
                     weighted_graph.edges.cols[10:40]),
        )
        ref = rebuild(dg)
        mine = (
            dg.out_partitions(8, "rows")
            if direction == "out"
            else dg.in_partitions(8, "rows")
        )
        theirs = (
            ref.out_partitions(8, "rows")
            if direction == "out"
            else ref.in_partitions(8, "rows")
        )
        assert mine.nnz == theirs.nnz == dg.n_edges
        for a, b in zip(mine.blocks, theirs.blocks):
            assert a.row_range == b.row_range
            assert np.array_equal(a.jc, b.jc)
            assert np.array_equal(a.cp, b.cp)
            assert np.array_equal(a.ir, b.ir)
            assert np.array_equal(a.num, b.num)
            assert a.num.dtype == b.num.dtype

    @pytest.mark.parametrize("direction", ["out", "in"])
    def test_transplanted_kernel_caches_match_fresh_argsort(
        self, weighted_graph, direction
    ):
        """Merged blocks inherit dst_groups by O(nnz) transplant; the
        result must equal what a cold stable argsort would compute."""
        rng = np.random.default_rng(11)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=(rng.integers(0, n, 50), rng.integers(0, n, 50),
                     rng.uniform(1, 9, 50)),
            deletes=(weighted_graph.edges.rows[::17],
                     weighted_graph.edges.cols[::17]),
        )
        view = (
            dg.out_partitions(8, "rows")
            if direction == "out"
            else dg.in_partitions(8, "rows")
        )
        for merged in view.blocks:
            if merged._dst_groups is None:
                continue  # untouched base block, warmed lazily
            order, starts, unique = merged.dst_groups()
            ref_order = np.argsort(merged.ir, kind="stable")
            assert np.array_equal(order, ref_order)
            sorted_ir = merged.ir[ref_order]
            assert np.array_equal(unique, np.unique(sorted_ir))
            assert np.array_equal(
                merged.col_expanded(),
                np.repeat(merged.jc, np.diff(merged.cp)),
            )
            assert np.array_equal(
                merged.dst_sorted_cols(), merged.col_expanded()[order]
            )
            if starts.size:
                assert np.array_equal(sorted_ir[starts], unique)

    def test_untouched_partitions_alias_base_blocks(self, weighted_graph):
        base_view = weighted_graph.out_partitions(8, "rows")
        # A delta confined to the first partition's row range (out view
        # rows are destinations).
        lo, hi = base_view.blocks[0].row_range
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=([hi - 1], [lo], [3.0])
        )
        merged = dg.out_partitions(8, "rows")
        assert merged.blocks[0] is not base_view.blocks[0]
        for mine, theirs in zip(merged.blocks[1:], base_view.blocks[1:]):
            assert mine is theirs

    def test_mmap_base_blocks_stay_shared(self, weighted_graph, tmp_path):
        path = tmp_path / "base.gmsnap"
        save_snapshot(weighted_graph, path, n_partitions=8, strategy="rows")
        loaded = load_snapshot(path)
        view = loaded.out_partitions(8, "rows")
        lo, hi = view.blocks[0].row_range
        dg = DeltaGraph(loaded).apply_delta(inserts=([hi - 1], [lo], [3.0]))
        merged = dg.out_partitions(8, "rows")
        # Untouched partitions still carry their snapshot references
        # (process workers would attach them by path, not by value).
        assert merged.blocks[1]._snapshot_ref is not None
        assert merged.blocks[0]._snapshot_ref is None


# ----------------------------------------------------------------------
# Engine runs over the overlay
# ----------------------------------------------------------------------
ALL_BACKENDS = ["serial", "threaded", "process"]


class TestEngineOverOverlay:
    @pytest.fixture(scope="class")
    def mutated(self):
        base = with_random_weights(rmat_graph(8, 8, seed=3), seed=11)
        rng = np.random.default_rng(2)
        n = base.n_vertices
        dg = DeltaGraph(base).apply_delta(
            inserts=(rng.integers(0, n, 50), rng.integers(0, n, 50),
                     rng.uniform(1, 9, 50)),
            deletes=(base.edges.rows[::31], base.edges.cols[::31]),
        )
        return dg, rebuild(dg)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_bfs_and_pagerank_bitwise_vs_rebuild(self, mutated, backend):
        dg, ref = mutated
        options = EngineOptions(backend=backend, n_workers=2)
        assert np.array_equal(
            run_bfs(dg, 0, options=options).distances,
            run_bfs(ref, 0, options=options).distances,
        )
        mine = run_pagerank(dg, max_iterations=10, options=options)
        theirs = run_pagerank(ref, max_iterations=10, options=options)
        assert np.array_equal(mine.ranks, theirs.ranks)

    def test_sssp_components_lp_vs_rebuild(self, mutated):
        dg, ref = mutated
        assert np.array_equal(
            run_sssp(dg, 0).distances, run_sssp(ref, 0).distances
        )
        assert np.array_equal(
            run_connected_components(dg).labels,
            run_connected_components(ref).labels,
        )
        seeds = {0: 0, 7: 1}
        assert np.array_equal(
            run_label_propagation(dg, seeds).labels,
            run_label_propagation(ref, seeds).labels,
        )

    def test_snapshot_cache_bypassed_for_overlays(self, mutated, tmp_path):
        dg, _ = mutated
        options = EngineOptions(snapshot_cache=str(tmp_path / "views"))
        run_bfs(dg, 0, options=options)
        # The overlay's views must not be persisted per epoch.
        assert not list((tmp_path / "views").glob("*.gmsnap")) or not (
            tmp_path / "views"
        ).exists()


# ----------------------------------------------------------------------
# Incremental recompute
# ----------------------------------------------------------------------
class TestIncrementalRecompute:
    @pytest.fixture(scope="class")
    def sym_base(self):
        return symmetrize(rmat_graph(8, 8, seed=9))

    def test_incremental_bfs_bitwise(self, sym_base):
        rng = np.random.default_rng(4)
        n = sym_base.n_vertices
        root = int(np.argmax(np.bincount(sym_base.edges.rows, minlength=n)))
        dg0 = DeltaGraph(sym_base)
        previous = run_bfs(dg0, root).distances
        src = rng.integers(0, n, 30)
        dst = rng.integers(0, n, 30)
        dg1 = dg0.apply_delta(
            inserts=(np.concatenate([src, dst]), np.concatenate([dst, src]))
        )
        inc = incremental_bfs(dg1, root, previous, dg1.last_batch)
        full = run_bfs(rebuild(dg1), root)
        assert inc.incremental
        assert np.array_equal(inc.result.distances, full.distances)
        assert (
            inc.result.stats.total_edges_processed
            <= full.stats.total_edges_processed
        )

    def test_incremental_bfs_falls_back_on_delete(self, sym_base):
        dg0 = DeltaGraph(sym_base)
        previous = run_bfs(dg0, 0).distances
        dg1 = dg0.apply_delta(
            deletes=(sym_base.edges.rows[:4], sym_base.edges.cols[:4])
        )
        inc = incremental_bfs(dg1, 0, previous, dg1.last_batch)
        assert inc.strategy == "full"
        assert np.array_equal(
            inc.result.distances, run_bfs(rebuild(dg1), 0).distances
        )

    def test_incremental_sssp_bitwise_and_fallback(self):
        base = with_random_weights(symmetrize(rmat_graph(8, 8, seed=5)), seed=2)
        rng = np.random.default_rng(6)
        n = base.n_vertices
        source = int(np.argmax(np.bincount(base.edges.rows, minlength=n)))
        dg0 = DeltaGraph(base)
        previous = run_sssp(dg0, source).distances
        # Monotone: new edges + a decreased weight.
        decrease = (
            [int(base.edges.rows[0])],
            [int(base.edges.cols[0])],
            [float(base.edges.vals[0]) / 2.0],
        )
        dg1 = dg0.apply_delta(
            inserts=(
                np.concatenate([rng.integers(0, n, 20), decrease[0]]),
                np.concatenate([rng.integers(0, n, 20), decrease[1]]),
                np.concatenate([rng.uniform(1, 50, 20), decrease[2]]),
            )
        )
        inc = incremental_sssp(dg1, source, previous, dg1.last_batch)
        assert inc.incremental
        assert np.array_equal(
            inc.result.distances, run_sssp(rebuild(dg1), source).distances
        )
        # Non-monotone: weight increase falls back but stays correct.
        increase = dg0.apply_delta(
            inserts=([int(base.edges.rows[1])], [int(base.edges.cols[1])],
                     [float(base.edges.vals[1]) * 3.0])
        )
        inc2 = incremental_sssp(increase, source, previous, increase.last_batch)
        assert inc2.strategy == "full"
        assert np.array_equal(
            inc2.result.distances,
            run_sssp(rebuild(increase), source).distances,
        )

    def test_incremental_components_bitwise(self, sym_base):
        rng = np.random.default_rng(7)
        n = sym_base.n_vertices
        dg0 = DeltaGraph(sym_base)
        previous = run_connected_components(dg0).labels
        src = rng.integers(0, n, 15)
        dst = rng.integers(0, n, 15)
        dg1 = dg0.apply_delta(
            inserts=(np.concatenate([src, dst]), np.concatenate([dst, src]))
        )
        inc = incremental_components(dg1, previous, dg1.last_batch)
        assert inc.incremental
        assert np.array_equal(
            inc.result.labels, run_connected_components(rebuild(dg1)).labels
        )

    @pytest.mark.parametrize("with_deletes", [False, True])
    def test_incremental_pagerank_within_tolerance(self, with_deletes):
        base = rmat_graph(8, 8, seed=12)
        rng = np.random.default_rng(8)
        n = base.n_vertices
        dg0 = DeltaGraph(base)
        previous = run_pagerank(dg0, max_iterations=300).ranks
        deletes = (
            (base.edges.rows[5:25], base.edges.cols[5:25])
            if with_deletes
            else None
        )
        dg1 = dg0.apply_delta(
            inserts=(rng.integers(0, n, 30), rng.integers(0, n, 30)),
            deletes=deletes,
        )
        inc = incremental_pagerank(
            dg1, previous, dg1.last_batch, tolerance=1e-12
        )
        assert inc.incremental
        reference = run_pagerank(rebuild(dg1), max_iterations=300).ranks
        assert np.abs(inc.result.ranks - reference).max() < 1e-7

    def test_incremental_pagerank_no_batch_falls_back(self):
        base = rmat_graph(7, 8, seed=13)
        dg = DeltaGraph(base)
        previous = run_pagerank(dg, max_iterations=50).ranks
        inc = incremental_pagerank(dg, previous, None, tolerance=1e-10)
        assert inc.strategy == "full"

    def test_incremental_first_in_edge_rebases_rank(self):
        # A vertex gaining its first in-edge must land on r + (1-r)·Δin,
        # not on its stale initial rank (receivers-only apply quirk).
        g = Graph.from_edges(4, np.array([0, 1]), np.array([1, 2]))
        dg0 = DeltaGraph(g)
        previous = run_pagerank(dg0, max_iterations=100).ranks
        dg1 = dg0.apply_delta(inserts=([2], [3]))  # 3 had no in-edges
        inc = incremental_pagerank(
            dg1, previous, dg1.last_batch, tolerance=1e-14
        )
        reference = run_pagerank(rebuild(dg1), max_iterations=100).ranks
        assert np.abs(inc.result.ranks - reference).max() < 1e-9


# ----------------------------------------------------------------------
# Delta log + compaction
# ----------------------------------------------------------------------
class TestDeltaLog:
    def test_append_replay_roundtrip(self, weighted_graph, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        rng = np.random.default_rng(3)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph)
        for _ in range(3):
            ins = (rng.integers(0, n, 12), rng.integers(0, n, 12),
                   rng.uniform(1, 9, 12))
            dels = (weighted_graph.edges.rows[:4], weighted_graph.edges.cols[:4])
            dg = dg.apply_delta(inserts=ins, deletes=dels)
            log.append(inserts=ins, deletes=dels, epoch=dg.epoch)
        replayed = log.apply_to(weighted_graph)
        assert replayed.epoch == 3
        assert edge_dict(replayed) == edge_dict(dg)

    def test_torn_trailing_record(self, weighted_graph, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        log.append(inserts=([0], [1], [2.0]), epoch=1)
        log.append(inserts=([1], [2], [3.0]), epoch=2)
        raw = log.path.read_bytes()
        log.path.write_bytes(raw[:-3])
        with pytest.raises(IOFormatError):
            log.replay(strict=True)
        assert len(log.replay(strict=False)) == 1

    def test_corrupt_crc_detected(self, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        log.append(inserts=([0], [1]), epoch=1)
        raw = bytearray(log.path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        log.path.write_bytes(bytes(raw))
        with pytest.raises(IOFormatError):
            log.replay(strict=True)

    def test_compaction_into_fresh_snapshot(self, weighted_graph, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=([0, 1], [2, 3], [5.0, 6.0])
        )
        log.append(inserts=([0, 1], [2, 3], [5.0, 6.0]), epoch=1)
        fresh = compact_delta_graph(dg, tmp_path / "fresh.gmsnap", log=log)
        assert fresh.snapshot_path is not None
        assert edge_dict(fresh) == edge_dict(dg)
        assert len(log) == 0
        # The compacted snapshot serves engine runs identically.
        assert np.array_equal(
            run_pagerank(fresh, max_iterations=5).ranks,
            run_pagerank(dg, max_iterations=5).ranks,
        )


# ----------------------------------------------------------------------
# Workspace interplay
# ----------------------------------------------------------------------
class TestEngineStateInterplay:
    def test_run_on_overlay_with_plain_options(self, weighted_graph):
        # record_partition_stats + nnz strategy: correct (not bitwise-
        # parity-guaranteed) results on the delta view.
        rng = np.random.default_rng(9)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=(rng.integers(0, n, 20), rng.integers(0, n, 20),
                     rng.uniform(1, 9, 20))
        )
        options = EngineOptions(
            partition_strategy="nnz", record_partition_stats=True
        )
        mine = run_bfs(dg, 0, options=options).distances
        theirs = run_bfs(rebuild(dg), 0, options=options).distances
        assert np.array_equal(mine, theirs)  # min-semiring: exact anyway

    def test_scalar_unfused_path_matches(self, weighted_graph):
        rng = np.random.default_rng(10)
        n = weighted_graph.n_vertices
        dg = DeltaGraph(weighted_graph).apply_delta(
            inserts=(rng.integers(0, n, 20), rng.integers(0, n, 20),
                     rng.uniform(1, 9, 20))
        )
        from repro.algorithms.bfs import BFSProgram, init_bfs

        options = EngineOptions(fused=False, use_bitvector=False)
        init_bfs(dg, 0)
        run_graph_program(dg, BFSProgram(), options)
        scalar = dg.vertex_properties.data.copy()
        assert np.array_equal(scalar, run_bfs(rebuild(dg), 0).distances)
