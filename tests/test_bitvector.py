"""Unit and property-based tests for the packed bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.vector.bitvector import Bitvector


class TestBasics:
    def test_new_bitvector_is_empty(self):
        bv = Bitvector(100)
        assert len(bv) == 100
        assert bv.popcount() == 0
        assert not bv.any()

    def test_set_and_test(self):
        bv = Bitvector(70)
        bv.set(0)
        bv.set(63)
        bv.set(64)
        bv.set(69)
        assert bv.test(0) and bv.test(63) and bv.test(64) and bv.test(69)
        assert not bv.test(1)
        assert bv.popcount() == 4

    def test_clear_bit(self):
        bv = Bitvector(10)
        bv.set(5)
        bv.clear_bit(5)
        assert not bv.test(5)
        assert bv.popcount() == 0

    def test_contains(self):
        bv = Bitvector(10)
        bv.set(3)
        assert 3 in bv
        assert 4 not in bv
        assert -1 not in bv
        assert 100 not in bv
        assert "x" not in bv

    def test_out_of_range_raises(self):
        bv = Bitvector(10)
        with pytest.raises(IndexError):
            bv.test(10)
        with pytest.raises(IndexError):
            bv.set(-1)

    def test_negative_length_raises(self):
        with pytest.raises(ShapeError):
            Bitvector(-1)

    def test_zero_length(self):
        bv = Bitvector(0)
        assert bv.popcount() == 0
        assert bv.to_indices().size == 0

    def test_fill_respects_length(self):
        bv = Bitvector(67)
        bv.fill()
        assert bv.popcount() == 67

    def test_clear_all(self):
        bv = Bitvector(200)
        bv.fill()
        bv.clear()
        assert bv.popcount() == 0

    def test_repr_mentions_counts(self):
        bv = Bitvector(8)
        bv.set(1)
        assert "length=8" in repr(bv) and "set=1" in repr(bv)

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(Bitvector(4))


class TestBulk:
    def test_set_many_and_indices(self):
        bv = Bitvector(130)
        bv.set_many(np.array([0, 64, 65, 129]))
        assert bv.to_indices().tolist() == [0, 64, 65, 129]

    def test_set_many_duplicates(self):
        bv = Bitvector(16)
        bv.set_many(np.array([3, 3, 3]))
        assert bv.popcount() == 1

    def test_set_many_empty(self):
        bv = Bitvector(16)
        bv.set_many(np.array([], dtype=np.int64))
        assert bv.popcount() == 0

    def test_set_many_out_of_range(self):
        bv = Bitvector(16)
        with pytest.raises(IndexError):
            bv.set_many(np.array([16]))

    def test_clear_many(self):
        bv = Bitvector(70)
        bv.set_many(np.array([1, 2, 65]))
        bv.clear_many(np.array([2, 65]))
        assert bv.to_indices().tolist() == [1]

    def test_from_indices(self):
        bv = Bitvector.from_indices(10, [9, 1])
        assert bv.to_indices().tolist() == [1, 9]

    def test_from_bool_array_roundtrip(self):
        mask = np.zeros(77, dtype=bool)
        mask[[0, 13, 76]] = True
        bv = Bitvector.from_bool_array(mask)
        assert np.array_equal(bv.to_bool_array(), mask)

    def test_from_bool_array_rejects_2d(self):
        with pytest.raises(ShapeError):
            Bitvector.from_bool_array(np.zeros((2, 2), dtype=bool))

    def test_iteration_order(self):
        bv = Bitvector.from_indices(100, [50, 2, 99])
        assert list(bv) == [2, 50, 99]


class TestAlgebra:
    def test_union(self):
        a = Bitvector.from_indices(10, [1, 2])
        b = Bitvector.from_indices(10, [2, 3])
        assert (a | b).to_indices().tolist() == [1, 2, 3]

    def test_intersection(self):
        a = Bitvector.from_indices(10, [1, 2])
        b = Bitvector.from_indices(10, [2, 3])
        assert (a & b).to_indices().tolist() == [2]

    def test_difference_update(self):
        a = Bitvector.from_indices(10, [1, 2, 3])
        a.difference_update(Bitvector.from_indices(10, [2]))
        assert a.to_indices().tolist() == [1, 3]

    def test_length_mismatch_raises(self):
        with pytest.raises(ShapeError):
            Bitvector(10).union_update(Bitvector(11))

    def test_equality(self):
        a = Bitvector.from_indices(10, [1])
        b = Bitvector.from_indices(10, [1])
        assert a == b
        b.set(2)
        assert a != b
        assert a != "not a bitvector"

    def test_copy_is_independent(self):
        a = Bitvector.from_indices(10, [1])
        b = a.copy()
        b.set(5)
        assert not a.test(5)


@given(
    length=st.integers(min_value=1, max_value=500),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_bitvector_matches_python_set(length, data):
    """The bitvector behaves exactly like a set of ints under set/clear."""
    indices = data.draw(
        st.lists(st.integers(0, length - 1), max_size=60)
    )
    removals = data.draw(
        st.lists(st.integers(0, length - 1), max_size=30)
    )
    bv = Bitvector(length)
    model = set()
    for i in indices:
        bv.set(i)
        model.add(i)
    for i in removals:
        bv.clear_bit(i)
        model.discard(i)
    assert bv.popcount() == len(model)
    assert bv.to_indices().tolist() == sorted(model)
    for probe in range(0, length, max(1, length // 13)):
        assert bv.test(probe) == (probe in model)


@given(
    length=st.integers(min_value=1, max_value=300),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_union_intersection_match_sets(length, data):
    xs = data.draw(st.lists(st.integers(0, length - 1), max_size=40))
    ys = data.draw(st.lists(st.integers(0, length - 1), max_size=40))
    a = Bitvector.from_indices(length, xs)
    b = Bitvector.from_indices(length, ys)
    assert set((a | b).to_indices().tolist()) == set(xs) | set(ys)
    assert set((a & b).to_indices().tolist()) == set(xs) & set(ys)
