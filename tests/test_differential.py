"""Property-based differential testing: all seven algorithms vs oracles.

Two layers:

1. **Deterministic adversarial suite** (fast, always on): the named
   hostile shapes — empty graph, single vertex, self-loops, duplicate
   edges, disconnected components, dangling sinks, zero-weight edges —
   run through every algorithm on every execution backend and checked
   against NetworkX / dense-NumPy oracles.
2. **Hypothesis suite** (marked ``slow``; the CI fast lane skips it,
   the full-suite job runs it): randomized graphs drawn from a strategy
   that deliberately produces those same pathologies, plus a stateful
   property test that a random sequence of insert/delete batches on a
   :class:`~repro.dynamic.DeltaGraph` always matches a from-scratch
   ``Graph`` built from the final edge set — for every algorithm, and
   for the incremental drivers against their full-recompute twins.

Oracle notes: PageRank and CF are checked against dense NumPy
re-implementations of the exact update rules (including the engine's
receivers-only ``apply`` semantics); BFS/SSSP/CC/LP/TC are checked
against NetworkX.  Min-semiring programs must match *bitwise*; additive
float programs within tight tolerances (summation order differs from
the oracle's by construction).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import networkx as nx

from repro.algorithms import (
    run_bfs,
    run_collaborative_filtering,
    run_connected_components,
    run_label_propagation,
    run_pagerank,
    run_sssp,
    run_triangle_count,
)
from repro.core.options import EngineOptions
from repro.dynamic import (
    DeltaGraph,
    incremental_bfs,
    incremental_components,
    incremental_pagerank,
    incremental_sssp,
)
from repro.graph.graph import Graph
from repro.graph.preprocess import symmetrize, to_dag

ALL_BACKENDS = ("serial", "threaded", "process")

HYPOTHESIS_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Graph construction helpers
# ----------------------------------------------------------------------
def build_graph(n: int, triples: list[tuple[int, int, float]]) -> Graph:
    src = np.array([t[0] for t in triples], dtype=np.int64)
    dst = np.array([t[1] for t in triples], dtype=np.int64)
    vals = np.array([t[2] for t in triples], dtype=np.float64)
    return Graph.from_edges(n, src, dst, vals)


def final_edges(triples: list[tuple[int, int, float]]) -> dict:
    """Keep-last dedup reference, independent of the library."""
    return {(u, v): w for (u, v, w) in triples}


def as_digraph(graph: Graph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(range(graph.n_vertices))
    coo = graph.edges
    for k in range(coo.nnz):
        g.add_edge(
            int(coo.rows[k]), int(coo.cols[k]), weight=float(coo.vals[k])
        )
    return g


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def oracle_bfs(graph: Graph, root: int) -> np.ndarray:
    lengths = nx.single_source_shortest_path_length(as_digraph(graph), root)
    out = np.full(graph.n_vertices, np.inf)
    for v, d in lengths.items():
        out[v] = float(d)
    return out


def oracle_sssp(graph: Graph, source: int) -> np.ndarray:
    lengths = nx.single_source_dijkstra_path_length(
        as_digraph(graph), source, weight="weight"
    )
    out = np.full(graph.n_vertices, np.inf)
    for v, d in lengths.items():
        out[v] = float(d)
    return out


def oracle_pagerank(graph: Graph, r: float, iterations: int) -> np.ndarray:
    """Dense replication of the engine's update, receivers-only apply."""
    n = graph.n_vertices
    coo = graph.edges
    out_deg = np.bincount(coo.rows, minlength=n).astype(np.float64)
    inv = np.zeros(n)
    np.divide(1.0, out_deg, out=inv, where=out_deg > 0)
    matrix = np.zeros((n, n))
    matrix[coo.rows, coo.cols] = 1.0  # deduplicated: one entry per pair
    receives = np.bincount(coo.cols, minlength=n) > 0
    x = np.ones(n)
    for _ in range(iterations):
        insum = (x * inv) @ matrix
        x = np.where(receives, r + (1.0 - r) * insum, x)
    return x


def oracle_components(graph: Graph) -> np.ndarray:
    out = np.zeros(graph.n_vertices, dtype=np.int64)
    for comp in nx.weakly_connected_components(as_digraph(graph)):
        label = min(comp)
        for v in comp:
            out[v] = label
    return out


def oracle_label_propagation(
    graph: Graph, seeds: dict[int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest seed by (hop distance, label) lexicographic minimum."""
    n = graph.n_vertices
    g = as_digraph(graph)
    labels = np.full(n, -1, dtype=np.int64)
    distances = np.full(n, np.inf)
    best = {}
    for seed, label in seeds.items():
        for v, d in nx.single_source_shortest_path_length(g, seed).items():
            key = (d, label)
            if v not in best or key < best[v]:
                best[v] = key
    for v, (d, label) in best.items():
        labels[v] = label
        distances[v] = float(d)
    return labels, distances


def oracle_triangles(graph: Graph) -> int:
    """Triangles of the underlying simple undirected graph."""
    g = nx.Graph()
    g.add_nodes_from(range(graph.n_vertices))
    coo = graph.edges
    for k in range(coo.nnz):
        u, v = int(coo.rows[k]), int(coo.cols[k])
        if u != v:
            g.add_edge(u, v)
    return sum(nx.triangles(g).values()) // 3


def oracle_cf(
    graph: Graph, n_users: int, k: int, gamma: float, lam: float,
    iterations: int, seed: int,
) -> np.ndarray:
    """Dense replication of the CF gradient step (BSP: both sides update
    from the previous iterate)."""
    n = graph.n_vertices
    rng = np.random.default_rng(seed)
    factors = rng.uniform(0.0, 0.1, size=(n, k))
    coo = graph.edges
    for _ in range(iterations):
        previous = factors.copy()
        gradient = np.zeros_like(previous)
        received = np.zeros(n, dtype=bool)
        for e in range(coo.nnz):
            u, v = int(coo.rows[e]), int(coo.cols[e])
            err = float(coo.vals[e]) - float(previous[u] @ previous[v])
            gradient[v] += err * previous[u]
            gradient[u] += err * previous[v]
            received[u] = received[v] = True
        factors = np.where(
            received[:, None],
            previous + gamma * (gradient - lam * previous),
            previous,
        )
    return factors


# ----------------------------------------------------------------------
# Algorithm runners (graph -> comparison against the oracle)
# ----------------------------------------------------------------------
def check_bfs(graph: Graph, options: EngineOptions) -> None:
    if graph.n_vertices == 0:
        return
    root = graph.n_vertices // 2
    ours = run_bfs(graph, root, options=options).distances
    assert np.array_equal(ours, oracle_bfs(graph, root))


def check_sssp(graph: Graph, options: EngineOptions) -> None:
    if graph.n_vertices == 0:
        return
    source = graph.n_vertices // 2
    ours = run_sssp(graph, source, options=options).distances
    theirs = oracle_sssp(graph, source)
    assert np.isinf(ours).tolist() == np.isinf(theirs).tolist()
    finite = np.isfinite(ours)
    np.testing.assert_allclose(
        ours[finite], theirs[finite], rtol=1e-12, atol=1e-12
    )


def check_pagerank(graph: Graph, options: EngineOptions) -> None:
    ours = run_pagerank(graph, max_iterations=12, options=options).ranks
    np.testing.assert_allclose(
        ours, oracle_pagerank(graph, 0.15, 12), rtol=1e-10, atol=1e-12
    )


def check_components(graph: Graph, options: EngineOptions) -> None:
    ours = run_connected_components(graph, options=options).labels
    assert np.array_equal(ours, oracle_components(graph))


def check_label_propagation(graph: Graph, options: EngineOptions) -> None:
    if graph.n_vertices == 0:
        return
    n = graph.n_vertices
    seeds = {0: min(1, n - 1), n - 1: 0}
    result = run_label_propagation(graph, seeds, options=options)
    labels, distances = oracle_label_propagation(graph, seeds)
    assert np.array_equal(result.labels, labels)
    assert np.array_equal(result.distances, distances)


def check_triangles(graph: Graph, options: EngineOptions) -> None:
    dag = to_dag(graph)
    ours = run_triangle_count(dag, options=options)
    assert ours.total == oracle_triangles(graph)


def check_cf(graph: Graph, options: EngineOptions) -> None:
    """CF runs on a synthetic bipartite reinterpretation of the graph:
    edges (u, v) become ratings user u -> item v (shifted)."""
    coo = graph.edges
    keep = coo.nnz > 0
    if not keep or graph.n_vertices == 0:
        return
    n_users = graph.n_vertices
    n = 2 * graph.n_vertices
    src = coo.rows
    dst = coo.cols + n_users
    ratings = 1.0 + (coo.vals % 4.0)
    bipartite = Graph.from_edges(n, src, dst, ratings)
    ours = run_collaborative_filtering(
        bipartite, n_users, k=3, gamma=0.01, lam=0.05, iterations=3,
        seed=5, track_rmse=False, options=options,
    )
    theirs = oracle_cf(bipartite, n_users, 3, 0.01, 0.05, 3, 5)
    np.testing.assert_allclose(ours.factors, theirs, rtol=1e-9, atol=1e-12)


ALGORITHM_CHECKS = {
    "bfs": check_bfs,
    "sssp": check_sssp,
    "pagerank": check_pagerank,
    "components": check_components,
    "label_propagation": check_label_propagation,
    "triangles": check_triangles,
    "cf": check_cf,
}


# ----------------------------------------------------------------------
# Deterministic adversarial suite (fast lane)
# ----------------------------------------------------------------------
def adversarial_graphs() -> dict[str, Graph]:
    return {
        "empty": Graph.from_edges(0, np.zeros(0, np.int64), np.zeros(0, np.int64)),
        "single_vertex": Graph.from_edges(
            1, np.zeros(0, np.int64), np.zeros(0, np.int64)
        ),
        "self_loops": build_graph(
            3, [(0, 0, 1.0), (1, 1, 2.0), (0, 1, 1.0), (1, 2, 3.0)]
        ),
        "duplicate_edges": build_graph(
            4, [(0, 1, 5.0), (0, 1, 2.0), (1, 2, 1.0), (0, 1, 7.0), (2, 3, 1.0)]
        ),
        "disconnected": build_graph(
            6, [(0, 1, 1.0), (1, 0, 1.0), (3, 4, 2.0), (4, 5, 2.0)]
        ),
        "dangling_sinks": build_graph(
            5, [(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 4, 4.0)]
        ),
        "zero_weights": build_graph(
            4, [(0, 1, 0.0), (1, 2, 0.0), (2, 3, 1.0), (0, 3, 0.5)]
        ),
    }


@pytest.mark.parametrize("backend", ALL_BACKENDS)
@pytest.mark.parametrize("algorithm", sorted(ALGORITHM_CHECKS))
def test_adversarial_graphs_match_oracles(algorithm, backend):
    options = EngineOptions(backend=backend, n_workers=2)
    for name, graph in adversarial_graphs().items():
        try:
            ALGORITHM_CHECKS[algorithm](graph, options)
        except AssertionError as exc:  # pragma: no cover - diagnostics
            raise AssertionError(
                f"{algorithm} diverged from its oracle on {name!r} "
                f"(backend={backend}): {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def graph_triples(draw, max_n: int = 20, max_edges: int = 60):
    """(n, triples): skewed toward the adversarial shapes — empty and
    tiny graphs, self-loops, duplicates, zero weights, dangling sinks."""
    n = draw(st.integers(min_value=0, max_value=max_n))
    if n == 0:
        return 0, []
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    vertex = st.integers(min_value=0, max_value=n - 1)
    weight = st.one_of(
        st.just(0.0),
        st.just(1.0),
        st.floats(
            min_value=0.0, max_value=100.0,
            allow_nan=False, allow_infinity=False,
        ),
    )
    triples = draw(
        st.lists(
            st.tuples(vertex, vertex, weight),
            min_size=n_edges, max_size=n_edges,
        )
    )
    return n, triples


@pytest.mark.slow
class TestHypothesisDifferential:
    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_dedup_semantics(self, data):
        n, triples = data
        graph = build_graph(n, triples)
        coo = graph.edges
        ours = {
            (int(coo.rows[k]), int(coo.cols[k])): float(coo.vals[k])
            for k in range(coo.nnz)
        }
        assert ours == final_edges(triples)

    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_bfs(self, data):
        check_bfs(build_graph(*data), EngineOptions())

    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_sssp(self, data):
        check_sssp(build_graph(*data), EngineOptions())

    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_pagerank(self, data):
        check_pagerank(build_graph(*data), EngineOptions())

    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_components(self, data):
        check_components(build_graph(*data), EngineOptions())

    @HYPOTHESIS_SETTINGS
    @given(data=graph_triples())
    def test_label_propagation(self, data):
        check_label_propagation(build_graph(*data), EngineOptions())

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=graph_triples(max_n=14, max_edges=40))
    def test_triangles(self, data):
        check_triangles(build_graph(*data), EngineOptions())

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=graph_triples(max_n=10, max_edges=30))
    def test_cf(self, data):
        check_cf(build_graph(*data), EngineOptions())

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=graph_triples(max_n=12, max_edges=30),
        backend=st.sampled_from(ALL_BACKENDS),
        algorithm=st.sampled_from(sorted(ALGORITHM_CHECKS)),
    )
    def test_any_algorithm_any_backend(self, data, backend, algorithm):
        options = EngineOptions(backend=backend, n_workers=2)
        ALGORITHM_CHECKS[algorithm](build_graph(*data), options)


# ----------------------------------------------------------------------
# DeltaGraph sequences vs from-scratch rebuilds (satellite property test)
# ----------------------------------------------------------------------
@st.composite
def mutation_batches(draw, n: int, max_batches: int = 4):
    vertex = st.integers(min_value=0, max_value=n - 1)
    weight = st.floats(
        min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False
    )
    batches = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_batches))):
        inserts = draw(
            st.lists(st.tuples(vertex, vertex, weight), max_size=12)
        )
        deletes = draw(st.lists(st.tuples(vertex, vertex), max_size=8))
        batches.append((inserts, deletes))
    return batches


def rebuild_from(delta: DeltaGraph) -> Graph:
    coo = delta.edges
    return Graph.from_edges(
        delta.n_vertices, coo.rows.copy(), coo.cols.copy(), coo.vals.copy(),
        dedup=False,
    )


@pytest.mark.slow
class TestDeltaGraphProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_mutation_sequence_matches_rebuild_every_algorithm(self, data):
        n, triples = data.draw(graph_triples(max_n=14, max_edges=40))
        if n == 0:
            return
        graph = build_graph(n, triples)
        reference = final_edges(triples)
        delta = DeltaGraph(graph)
        for inserts, deletes in data.draw(mutation_batches(n)):
            ins = (
                ([t[0] for t in inserts], [t[1] for t in inserts],
                 [t[2] for t in inserts])
                if inserts
                else None
            )
            dels = (
                ([t[0] for t in deletes], [t[1] for t in deletes])
                if deletes
                else None
            )
            delta = delta.apply_delta(ins, dels)
            for u, v in deletes:
                reference.pop((u, v), None)
            for u, v, w in inserts:
                reference[(u, v)] = w
        coo = delta.edges
        ours = {
            (int(coo.rows[k]), int(coo.cols[k])): float(coo.vals[k])
            for k in range(coo.nnz)
        }
        assert ours == reference

        rebuilt = rebuild_from(delta)
        options = EngineOptions()
        root = n // 2
        # Engine-path algorithms: overlay vs rebuild, bitwise.
        assert np.array_equal(
            run_bfs(delta, root, options=options).distances,
            run_bfs(rebuilt, root, options=options).distances,
        )
        assert np.array_equal(
            run_sssp(delta, root, options=options).distances,
            run_sssp(rebuilt, root, options=options).distances,
        )
        assert np.array_equal(
            run_pagerank(delta, max_iterations=8, options=options).ranks,
            run_pagerank(rebuilt, max_iterations=8, options=options).ranks,
        )
        assert np.array_equal(
            run_connected_components(delta, options=options).labels,
            run_connected_components(rebuilt, options=options).labels,
        )
        seeds = {0: 0, n - 1: min(1, n - 1)}
        assert np.array_equal(
            run_label_propagation(delta, seeds, options=options).labels,
            run_label_propagation(rebuilt, seeds, options=options).labels,
        )
        # Materialization-path algorithms (preprocessing reads .edges).
        assert (
            run_triangle_count(to_dag(delta), options=options).total
            == run_triangle_count(to_dag(rebuilt), options=options).total
        )

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_incremental_paths_match_full_recompute(self, data):
        n, triples = data.draw(graph_triples(max_n=14, max_edges=40))
        if n == 0:
            return
        graph = build_graph(n, triples)
        delta = DeltaGraph(graph)
        root = n // 2
        prev_bfs = run_bfs(delta, root).distances
        prev_sssp = run_sssp(delta, root).distances
        prev_cc = run_connected_components(delta).labels
        prev_pr = run_pagerank(delta, max_iterations=200).ranks
        for inserts, deletes in data.draw(mutation_batches(n, max_batches=3)):
            ins = (
                ([t[0] for t in inserts], [t[1] for t in inserts],
                 [t[2] for t in inserts])
                if inserts
                else None
            )
            dels = (
                ([t[0] for t in deletes], [t[1] for t in deletes])
                if deletes
                else None
            )
            delta = delta.apply_delta(ins, dels)
            batch = delta.last_batch
            rebuilt = rebuild_from(delta)
            # Monotone or not, incremental results must equal a full
            # recompute (bitwise for the min-semiring programs).
            inc_bfs = incremental_bfs(delta, root, prev_bfs, batch)
            assert np.array_equal(
                inc_bfs.result.distances, run_bfs(rebuilt, root).distances
            )
            inc_sssp = incremental_sssp(delta, root, prev_sssp, batch)
            assert np.array_equal(
                inc_sssp.result.distances,
                run_sssp(rebuilt, root).distances,
            )
            inc_cc = incremental_components(delta, prev_cc, batch)
            assert np.array_equal(
                inc_cc.result.labels,
                run_connected_components(rebuilt).labels,
            )
            inc_pr = incremental_pagerank(
                delta, prev_pr, batch, tolerance=1e-13
            )
            full_pr = run_pagerank(rebuilt, max_iterations=200).ranks
            np.testing.assert_allclose(
                inc_pr.result.ranks, full_pr, rtol=1e-8, atol=1e-8
            )
            prev_bfs = inc_bfs.result.distances
            prev_sssp = inc_sssp.result.distances
            prev_cc = inc_cc.result.labels
            prev_pr = inc_pr.result.ranks
