"""The observability layer: metrics registry, tracing, slow-query log,
telemetry wiring, and the engine profiling hook."""

from __future__ import annotations

import json
import logging
import threading
from pathlib import Path

import pytest

from repro.algorithms.batched import bfs_multi_source
from repro.algorithms.bfs import run_bfs
from repro.core.options import EngineOptions
from repro.errors import ObservabilityError, ProgramError
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServeTelemetry,
    SlowQueryLog,
    Trace,
    new_request_id,
    sanitize_request_id,
)
from repro.serve import BatchPolicy, GraphRegistry, GraphService

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=8, edge_factor=8, seed=5))


class _ListHandler(logging.Handler):
    """Captures formatted log messages for assertions."""

    def __init__(self):
        super().__init__()
        self.messages: list[str] = []

    def emit(self, record):
        self.messages.append(record.getMessage())


def _capture_logger(name: str) -> tuple[logging.Logger, _ListHandler]:
    logger = logging.getLogger(name)
    logger.propagate = False
    logger.setLevel(logging.DEBUG)
    handler = _ListHandler()
    logger.handlers = [handler]
    return logger, handler


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
class TestInstruments:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "A total.", labels=("kind",))
        counter.inc(kind="bfs")
        counter.inc(2, kind="bfs")
        counter.inc(kind="ppr")
        assert counter.value(kind="bfs") == 3
        assert counter.value(kind="ppr") == 1
        assert counter.value(kind="never") == 0

    def test_counter_rejects_negative_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "A total.")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_counter_set_mirrors_external_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "A total.")
        counter.set(41)
        counter.set(42)
        assert counter.value() == 42

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "A gauge.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value() == 12

    def test_label_set_must_match_declaration(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "A total.", labels=("kind",))
        with pytest.raises(ObservabilityError, match="declared labels"):
            counter.inc()
        with pytest.raises(ObservabilityError, match="declared labels"):
            counter.inc(kind="bfs", extra="nope")

    def test_histogram_le_is_inclusive(self):
        """An observation exactly on a bucket bound lands in that
        bucket, per the Prometheus ``le`` (less-or-equal) convention."""
        registry = MetricsRegistry()
        hist = registry.histogram("h", "H.", buckets=(0.1, 1.0))
        hist.observe(0.1)    # == first bound -> first bucket
        hist.observe(0.1001)  # just past -> second bucket
        hist.observe(7.0)    # beyond the last bound -> +Inf only
        text = registry.render()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_histogram_rejects_bad_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="at least one"):
            registry.histogram("h1", "H.", buckets=())
        with pytest.raises(ObservabilityError, match="strictly"):
            registry.histogram("h2", "H.", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError, match="strictly"):
            registry.histogram("h3", "H.", buckets=(2.0, 1.0))

    def test_histogram_child_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "h", "H.", buckets=(1.0,), labels=("kind",)
        )
        assert hist.child_count(kind="bfs") == 0
        hist.observe(0.5, kind="bfs")
        hist.observe(2.5, kind="bfs")
        assert hist.child_count(kind="bfs") == 2


class TestRegistry:
    def test_redeclaration_returns_existing_family(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "A total.", labels=("kind",))
        second = registry.counter("c_total", "A total.", labels=("kind",))
        assert first is second

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("m", "M.", labels=("kind",))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("m", "M.", labels=("kind",))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.counter("m", "M.", labels=("other",))
        registry.histogram("h", "H.", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("h", "H.", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            registry.counter("0bad", "Bad.")
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            registry.counter("has space", "Bad.")
        with pytest.raises(ObservabilityError, match="invalid label name"):
            registry.counter("ok_total", "Ok.", labels=("0bad",))
        with pytest.raises(ObservabilityError, match="invalid label name"):
            registry.counter("ok2_total", "Ok.", labels=("__reserved",))

    def test_names_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b_total", "B.")
        registry.gauge("a", "A.")
        assert registry.names() == ("b_total", "a")

    def test_collector_runs_at_render(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Depth.")
        source = {"depth": 0}
        registry.add_collector(lambda: gauge.set(source["depth"]))
        source["depth"] = 7
        assert "depth 7" in registry.render()
        source["depth"] = 3
        assert "depth 3" in registry.render()

    def test_concurrent_increments_are_lossless(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", labels=("worker",))
        hist = registry.histogram("h", "H.", buckets=(0.5,))
        n_threads, per_thread = 16, 1000

        def work(worker: int) -> None:
            for i in range(per_thread):
                counter.inc(worker=str(worker % 4))
                hist.observe(i % 2)  # alternates the two buckets
                if i % 100 == 0:
                    registry.render()  # scrapes interleave with writes

        threads = [
            threading.Thread(target=work, args=(w,)) for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(counter.value(worker=str(w)) for w in range(4))
        assert total == n_threads * per_thread
        assert hist.child_count() == n_threads * per_thread


class TestPrometheusExposition:
    def test_golden_render(self):
        """Byte-exact exposition for a small fixed registry — the
        contract a real Prometheus scraper parses."""
        registry = MetricsRegistry()
        requests = registry.counter(
            "app_requests_total", "Requests served.", labels=("kind",)
        )
        requests.inc(kind="bfs")
        requests.inc(2, kind="ppr")
        depth = registry.gauge("app_queue_depth", "Queue depth.")
        depth.set(3)
        latency = registry.histogram(
            "app_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        latency.observe(0.05)
        latency.observe(0.5)
        latency.observe(5.0)
        assert registry.render() == (
            "# HELP app_requests_total Requests served.\n"
            "# TYPE app_requests_total counter\n"
            'app_requests_total{kind="bfs"} 1\n'
            'app_requests_total{kind="ppr"} 2\n'
            "# HELP app_queue_depth Queue depth.\n"
            "# TYPE app_queue_depth gauge\n"
            "app_queue_depth 3\n"
            "# HELP app_latency_seconds Latency.\n"
            "# TYPE app_latency_seconds histogram\n"
            'app_latency_seconds_bucket{le="0.1"} 1\n'
            'app_latency_seconds_bucket{le="1"} 2\n'
            'app_latency_seconds_bucket{le="+Inf"} 3\n'
            "app_latency_seconds_sum 5.55\n"
            "app_latency_seconds_count 3\n"
        )

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "C.", labels=("path",))
        counter.inc(path='a\\b"c\nd')
        assert r'c_total{path="a\\b\"c\nd"} 1' in registry.render()

    def test_help_escaping_and_trailing_newline(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "Line one\nline two.")
        text = registry.render()
        assert "# HELP c_total Line one\\nline two." in text
        assert text.endswith("\n")

    def test_integer_values_render_without_decimal(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "G.")
        gauge.set(42.0)
        assert "g 42\n" in registry.render()
        gauge.set(42.5)
        assert "g 42.5\n" in registry.render()


# ----------------------------------------------------------------------
# Tracing & the slow-query log
# ----------------------------------------------------------------------
class TestTrace:
    def test_spans_record_relative_ms_on_injected_clock(self):
        now = [100.0]
        trace = Trace("rid-1", clock=lambda: now[0])
        trace.add("admitted", tenant=None)
        now[0] = 100.010
        trace.add("enqueued", pending=2)
        now[0] = 100.250
        trace.add("responded", status="ok")
        assert trace.span_names() == ["admitted", "enqueued", "responded"]
        document = trace.to_dict()
        assert document["request_id"] == "rid-1"
        assert [s["t_ms"] for s in document["spans"]] == [0.0, 10.0, 250.0]
        assert document["spans"][1]["pending"] == 2
        assert trace.elapsed_ms() == pytest.approx(250.0)

    def test_generated_id_when_none_supplied(self):
        assert len(Trace().request_id) == 32

    def test_trace_is_json_serializable(self):
        trace = Trace()
        trace.add("admitted", tenant="acme")
        json.dumps(trace.to_dict())  # must not raise


class TestSanitizeRequestId:
    @pytest.mark.parametrize("raw", [
        "abc", "A-b_c.9", "x" * 128, new_request_id(), " padded \t",
    ])
    def test_accepts_well_formed(self, raw):
        assert sanitize_request_id(raw) == raw.strip()

    @pytest.mark.parametrize("raw", [
        None, "", "   ", "x" * 129, "has space", "semi;colon",
        "new\nline", 'quo"te', "non-ascii-é",
    ])
    def test_rejects_everything_else(self, raw):
        assert sanitize_request_id(raw) is None


class TestSlowQueryLog:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="> 0"):
            SlowQueryLog(0.0)
        with pytest.raises(ValueError, match="> 0"):
            SlowQueryLog(-5.0)

    def test_under_threshold_is_silent(self):
        logger, handler = _capture_logger("test.slowquery.silent")
        log = SlowQueryLog(100.0, logger=logger)
        trace = Trace("rid-fast")
        assert log.maybe_log(trace, 100.0) is False  # at threshold: free
        assert log.maybe_log(trace, 12.0) is False
        assert handler.messages == []
        assert log.logged == 0

    def test_over_threshold_emits_one_json_line(self):
        logger, handler = _capture_logger("test.slowquery.hit")
        log = SlowQueryLog(100.0, logger=logger)
        now = [5.0]
        trace = Trace("rid-slow", clock=lambda: now[0])
        trace.add("admitted", tenant=None)
        now[0] = 5.150
        trace.add("responded", status="ok")
        assert log.maybe_log(
            trace, 150.0, graph="g", kind="bfs", status="ok"
        ) is True
        assert log.logged == 1
        assert len(handler.messages) == 1
        record = json.loads(handler.messages[0])
        assert record["slow_query_ms"] == 150.0
        assert record["threshold_ms"] == 100.0
        assert record["graph"] == "g"
        assert record["request_id"] == "rid-slow"
        assert [s["span"] for s in record["spans"]] == [
            "admitted", "responded",
        ]


# ----------------------------------------------------------------------
# The engine profiling hook
# ----------------------------------------------------------------------
class TestProfileHook:
    def test_non_callable_hook_rejected(self):
        with pytest.raises(ProgramError, match="profile_hook"):
            EngineOptions(profile_hook="not-callable")

    def test_hook_excluded_from_options_equality(self):
        assert EngineOptions(profile_hook=lambda s: None) == EngineOptions()

    def test_sequential_run_reports_every_superstep(self, sym):
        ticks = []
        result = run_bfs(
            sym, 1, options=EngineOptions(profile_hook=ticks.append)
        )
        assert len(ticks) == result.stats.n_supersteps
        assert [t.iteration for t in ticks] == list(range(len(ticks)))
        assert all(t.seconds >= 0.0 for t in ticks)

    def test_batched_run_reports_every_superstep(self, sym):
        ticks = []
        results = bfs_multi_source(
            sym, [1, 2, 3],
            options=EngineOptions(profile_hook=ticks.append),
        )
        assert results.run.n_supersteps == len(ticks)
        assert len(ticks) > 0


# ----------------------------------------------------------------------
# ServeTelemetry end to end
# ----------------------------------------------------------------------
class TestServeTelemetry:
    def _service(self, sym, **telemetry_kwargs):
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        telemetry = ServeTelemetry(**telemetry_kwargs)
        service = GraphService(
            registry,
            policy=BatchPolicy(max_batch_k=4, max_wait_ms=5.0),
            telemetry=telemetry,
        )
        return service, telemetry

    def test_request_metrics_and_trace_timeline(self, sym):
        service, telemetry = self._service(sym)
        with service:
            first = service.query("g", "bfs", {"root": 1})
            second = service.query("g", "bfs", {"root": 1})
        assert not first.cached and second.cached
        # The uncached request walked the whole pipeline, in order.
        assert first.trace.span_names() == [
            "admitted", "cache_lookup", "enqueued", "dispatched",
            "engine_start", "engine_end", "responded",
        ]
        # The cache hit never touched the scheduler or the engine.
        assert second.trace.span_names() == [
            "admitted", "cache_lookup", "responded",
        ]
        assert first.request_id and second.request_id
        assert first.request_id != second.request_id
        text = telemetry.registry.render()
        assert (
            'repro_requests_total{graph="g", kind="bfs", status="ok"} 1'
            in text
        )
        assert (
            'repro_requests_total{graph="g", kind="bfs", status="cached"} 1'
            in text
        )
        assert 'repro_request_latency_seconds_bucket{graph="g", kind="bfs", le="+Inf"} 2' in text
        assert "repro_batch_lanes_count 1" in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_cache_misses_total 1" in text
        assert "repro_engine_supersteps_total" in text
        assert 'repro_service_queries_total{kind="bfs"} 2' in text
        assert 'repro_engine_kernel_blocks_total{kernel=' in text
        assert 'repro_graph_epoch{graph="g"} 0' in text

    def test_explicit_request_id_round_trips(self, sym):
        service, _telemetry = self._service(sym)
        with service:
            result = service.query(
                "g", "bfs", {"root": 2}, request_id="my-req-7"
            )
        assert result.request_id == "my-req-7"
        assert result.trace.to_dict()["request_id"] == "my-req-7"
        assert result.to_dict()["request_id"] == "my-req-7"

    def test_engine_end_span_carries_superstep_profile(self, sym):
        service, _telemetry = self._service(sym)
        with service:
            result = service.query("g", "bfs", {"root": 1})
        spans = result.trace.to_dict()["spans"]
        engine_end = next(s for s in spans if s["span"] == "engine_end")
        assert engine_end["supersteps"] > 0
        profile = engine_end["profile"]
        assert len(profile) == engine_end["supersteps"]
        assert [p["iteration"] for p in profile] == list(range(len(profile)))
        for tick in profile:
            assert set(tick) == {
                "iteration", "seconds", "frontier_density",
                "edges_processed",
            }

    def test_slow_query_log_dumps_full_timeline(self, sym):
        logger, handler = _capture_logger("test.slowquery.e2e")
        service, telemetry = self._service(
            sym, slow_query_ms=1e-4, logger=logger
        )
        with service:
            service.query("g", "bfs", {"root": 3})
        assert telemetry.slow_log.logged == 1
        record = json.loads(handler.messages[0])
        assert record["graph"] == "g" and record["kind"] == "bfs"
        assert record["status"] == "ok"
        assert [s["span"] for s in record["spans"]] == [
            "admitted", "cache_lookup", "enqueued", "dispatched",
            "engine_start", "engine_end", "responded",
        ]
        timestamps = [s["t_ms"] for s in record["spans"]]
        assert timestamps == sorted(timestamps)
        assert "repro_slow_queries_total 1" in telemetry.registry.render()

    def test_uptime_is_monotonic_and_started_at_wall(self, sym):
        service, telemetry = self._service(sym)
        with service:
            stats = service.stats()
            assert stats["uptime_seconds"] >= 0.0
            assert stats["started_at"] > 1e9  # a wall-clock epoch stamp
            later = service.stats()["uptime_seconds"]
            assert later >= stats["uptime_seconds"]
            text = telemetry.registry.render()
        assert "repro_service_uptime_seconds" in text

    def test_collector_failure_is_counted_not_raised(self, sym):
        telemetry = ServeTelemetry()

        class _Broken:
            def stats(self):
                raise RuntimeError("boom")

        telemetry.bind_service(_Broken())
        text = telemetry.registry.render()  # must not raise
        assert "repro_obs_collect_errors_total 1" in text

    def test_catalog_registered_before_any_traffic(self):
        telemetry = ServeTelemetry()
        names = telemetry.registry.names()
        assert "repro_requests_total" in names
        assert "repro_replication_epoch_lag" in names
        # The unbound render still exposes every family header.
        text = telemetry.registry.render()
        for name in names:
            assert f"# TYPE {name} " in text


def test_every_registered_metric_is_documented():
    """docs/OBSERVABILITY.md's catalog must cover the full registry —
    the same check CI runs via tools/check_metrics_docs.py."""
    doc = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    telemetry = ServeTelemetry()
    missing = [
        name for name in telemetry.registry.names() if name not in doc
    ]
    assert not missing, f"undocumented metrics: {missing}"
