"""Compiled-kernel tier (repro.exec.jit): parity and the fallback matrix.

The tier's defining claims, each tested here directly:

1. **Pairwise-sum replication** — :func:`repro.exec.jit._pairwise_sum`
   reproduces NumPy's ``npy_pairwise_sum`` bit for bit, so additive
   grouped folds match ``np.add.reduceat`` exactly (fuzzed across the
   recursion's block-size boundaries).
2. **Interpreted mode** — with ``FORCE_INTERPRETED`` the very same
   kernel functions run as plain Python, which lets a NumPy-only CI
   exercise the jit dispatch, merge and stats paths end to end.
3. **The fallback matrix** — numba missing (whole-executor swap with a
   logged warning), non-JIT-able program (NumPy kernels wholesale with
   a logged info), and non-eligible blocks (per-block NumPy dispatch) —
   every cell bitwise-identical to the serial reference, every cell
   visible in ``kernel_counts``.
"""

from __future__ import annotations

import logging

import numpy as np
import pytest

import repro.exec.jit as jitmod
from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_pagerank
from repro.core.graph_program import EdgeDirection, SemiringProgram
from repro.core.kernels import (
    JIT_KERNEL_NAMES,
    KERNEL_JIT_DENSE,
    KERNEL_JIT_SPARSE,
    KERNEL_NAMES,
    KERNEL_SCALAR,
)
from repro.core.engine import run_graph_program
from repro.core.options import KNOWN_BACKENDS, EngineOptions
from repro.core.semiring import MAX_TIMES, PLUS_TIMES
from repro.errors import ProgramError
from repro.exec import (
    JitExecutor,
    JitThreadedExecutor,
    SerialExecutor,
    ThreadedExecutor,
    create_executor,
)
from repro.exec.jit import (
    NUMBA_AVAILABLE,
    PW_BLOCKSIZE,
    _pairwise_sum,
    jit_tier_available,
)
from repro.graph.generators import figure1_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.vector.sparse_vector import FLOAT64

ALL_KERNEL_NAMES = set(KERNEL_NAMES) | set(JIT_KERNEL_NAMES)

#: Lengths straddling every branch of npy_pairwise_sum: the < 8
#: sequential tail, the unrolled 8..128 block, and the recursive split
#: (which rounds the halves to multiples of 8).
PAIRWISE_LENGTHS = sorted(
    set(range(1, 18))
    | {31, 32, 33, 63, 64, 65, 127, 128, 129, 130, 255, 256, 257,
       511, 512, 640, 1000, 1 << 11}
)


def _hostile_floats(rng, n):
    """Magnitude-spread values where fold order visibly changes the bits."""
    return rng.standard_normal(n) * np.exp2(rng.integers(-30, 30, size=n))


class TestPairwiseSum:
    """_pairwise_sum vs the np.add.reduceat group fold, bit for bit."""

    @pytest.mark.parametrize("n", PAIRWISE_LENGTHS)
    def test_group_fold_matches_reduceat(self, n):
        rng = np.random.default_rng(n)
        a = _hostile_floats(rng, n)
        expected = np.add.reduceat(a, np.array([0]))[0]
        if n == 1:
            got = a[0]
        else:
            # reduceat folds a group as first + pairwise(rest).
            got = a[0] + _pairwise_sum(a, 1, n - 1)
        assert np.float64(got).tobytes() == np.float64(expected).tobytes()

    def test_offset_independence(self):
        rng = np.random.default_rng(7)
        a = _hostile_floats(rng, 300)
        base = _pairwise_sum(a, 0, 300)
        padded = np.concatenate([_hostile_floats(rng, 37), a])
        assert _pairwise_sum(padded, 37, 300) == base

    def test_zero_length_is_zero(self):
        assert _pairwise_sum(np.zeros(4), 2, 0) == 0.0

    def test_multi_group_reduceat_fuzz(self):
        """Random group structures, exactly as the grouped kernels see
        them: offsets into one big dst-sorted value array."""
        rng = np.random.default_rng(123)
        for trial in range(20):
            n = int(rng.integers(1, 4000))
            vals = _hostile_floats(rng, n)
            n_groups = int(rng.integers(1, min(n, 64) + 1))
            starts = np.unique(
                np.concatenate(
                    [[0], rng.integers(0, n, size=n_groups - 1)]
                )
            ).astype(np.int64)
            expected = np.add.reduceat(vals, starts)
            bounds = np.append(starts, n)
            for g in range(starts.shape[0]):
                lo, hi = int(bounds[g]), int(bounds[g + 1])
                length = hi - lo
                if length == 1:
                    got = vals[lo]
                else:
                    got = vals[lo] + _pairwise_sum(vals, lo + 1, length - 1)
                assert np.float64(got).tobytes() == (
                    np.float64(expected[g]).tobytes()
                ), f"trial {trial} group {g} (len {length})"

    def test_blocksize_matches_numpy(self):
        # The constant is load-bearing: NumPy's unrolled block is 128.
        assert PW_BLOCKSIZE == 128


class TestRegistry:
    """Backend names, executor construction, options validation."""

    def test_backends_registered(self):
        assert "jit" in KNOWN_BACKENDS
        assert "jit-threaded" in KNOWN_BACKENDS

    def test_create_executor(self):
        assert isinstance(
            create_executor(EngineOptions(backend="jit")), JitExecutor
        )
        assert isinstance(
            create_executor(EngineOptions(backend="jit-threaded")),
            JitThreadedExecutor,
        )

    def test_options_accept_jit_backends(self):
        assert EngineOptions(backend="jit").backend == "jit"
        assert EngineOptions(backend="jit-threaded").backend == "jit-threaded"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ProgramError, match="backend"):
            EngineOptions(backend="jitted")

    def test_fallback_executors(self):
        assert isinstance(JitExecutor(3).fallback(), SerialExecutor)
        threaded = JitThreadedExecutor(3).fallback()
        assert isinstance(threaded, ThreadedExecutor)
        assert threaded.n_workers == 3

    def test_tier_available_reflects_modes(self, monkeypatch):
        monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", True)
        assert jit_tier_available()
        monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", False)
        assert jit_tier_available() == NUMBA_AVAILABLE


@pytest.fixture
def interpreted(monkeypatch):
    """Force the kernel functions to run as plain Python (tier 'available')."""
    monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", True)


@pytest.fixture(scope="module")
def rmat():
    return rmat_graph(scale=7, edge_factor=8, seed=3)


@pytest.fixture(scope="module")
def rmat_sym(rmat):
    return symmetrize(rmat)


class TestInterpretedParity:
    """The jit code paths, pure Python, bitwise against the NumPy tier."""

    @pytest.mark.parametrize("backend", ["jit", "jit-threaded"])
    def test_pagerank_bitwise(self, interpreted, rmat, backend):
        ref = run_pagerank(rmat, max_iterations=8)
        got = run_pagerank(
            rmat,
            max_iterations=8,
            options=EngineOptions(backend=backend, n_workers=2),
        )
        assert np.array_equal(ref.ranks, got.ranks)
        assert got.stats.backend == backend
        totals = got.stats.kernel_totals()
        assert any(k in JIT_KERNEL_NAMES for k in totals), totals

    @pytest.mark.parametrize("backend", ["jit", "jit-threaded"])
    def test_bfs_mixed_dispatch_visible(self, interpreted, rmat_sym, backend):
        """BFS frontiers span the whole selector range: the tiny root
        frontier stays on the scalar NumPy kernel, the big middle
        supersteps go compiled — and ``kernel_counts`` shows both."""
        deg = np.zeros(rmat_sym.n_vertices, dtype=np.int64)
        np.add.at(deg, rmat_sym.edges.rows, 1)
        root = int(np.flatnonzero(deg > 0)[deg[deg > 0].argmin()])
        ref = run_bfs(rmat_sym, root)
        got = run_bfs(
            rmat_sym,
            root,
            options=EngineOptions(backend=backend, n_workers=2),
        )
        assert np.array_equal(ref.distances, got.distances)
        totals = got.stats.kernel_totals()
        assert set(totals) <= ALL_KERNEL_NAMES
        assert any(k in JIT_KERNEL_NAMES for k in totals), totals
        assert KERNEL_SCALAR in totals, totals

    def test_kernel_names_are_renamed_not_invented(self, interpreted, rmat):
        got = run_pagerank(
            rmat, max_iterations=4, options=EngineOptions(backend="jit")
        )
        assert set(got.stats.kernel_totals()) <= ALL_KERNEL_NAMES
        assert {KERNEL_JIT_SPARSE, KERNEL_JIT_DENSE} & set(
            got.stats.kernel_totals()
        )


def _run_indegree(graph, semiring, options):
    program = SemiringProgram(semiring, EdgeDirection.OUT_EDGES)
    graph.init_properties(FLOAT64, 1.0)
    graph.set_all_active()
    stats = run_graph_program(graph, program, options.with_(max_iterations=1))
    return graph.vertex_properties.data.copy(), stats


class TestFallbackMatrix:
    """Every cell of the fallback matrix: identical results, honest logs."""

    def test_non_jitable_program_runs_numpy_kernels(
        self, interpreted, caplog
    ):
        """MAX_TIMES has no absorbing identity, so the tier refuses to
        fuse it: the jit backend runs the NumPy kernels wholesale, says
        so once, and the results match the serial backend exactly."""
        ref, _ = _run_indegree(figure1_graph(), MAX_TIMES, EngineOptions())
        with caplog.at_level(logging.INFO, logger="repro.exec.jit"):
            got, stats = _run_indegree(
                figure1_graph(), MAX_TIMES, EngineOptions(backend="jit")
            )
        assert np.array_equal(ref, got)
        assert stats.backend == "jit"
        totals = stats.kernel_totals()
        assert totals and not any(k in JIT_KERNEL_NAMES for k in totals)
        assert any(
            "no compiled (process, reduce) pair" in r.message
            for r in caplog.records
        )

    def test_jitable_program_compiles_on_same_graph(self, interpreted):
        """Control for the test above: swap in PLUS_TIMES and the same
        run dispatches compiled kernels (the refusal is per-program)."""
        ref, _ = _run_indegree(figure1_graph(), PLUS_TIMES, EngineOptions())
        got, stats = _run_indegree(
            figure1_graph(), PLUS_TIMES, EngineOptions(backend="jit")
        )
        assert np.array_equal(ref, got)
        # figure1 is tiny, so the selector may still pick scalar; all
        # that is asserted here is that the program *plan* exists (no
        # wholesale-NumPy log) and results match.  The compiled-kernel
        # attribution is asserted on real graphs above.
        assert set(stats.kernel_totals()) <= ALL_KERNEL_NAMES

    @pytest.mark.skipif(
        NUMBA_AVAILABLE, reason="needs the numba-missing environment"
    )
    @pytest.mark.parametrize(
        "backend,expected",
        [("jit", "serial"), ("jit-threaded", "threaded")],
    )
    def test_numba_missing_swaps_executor(
        self, monkeypatch, caplog, rmat, backend, expected
    ):
        """Without numba (and without interpreted mode) the engine swaps
        in the NumPy executor, logs a warning, and records the executor
        that actually ran — no silent substitution."""
        monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", False)
        ref = run_pagerank(rmat, max_iterations=6)
        with caplog.at_level(logging.WARNING, logger="repro.exec.jit"):
            got = run_pagerank(
                rmat,
                max_iterations=6,
                options=EngineOptions(backend=backend, n_workers=2),
            )
        assert np.array_equal(ref.ranks, got.ranks)
        assert got.stats.backend == expected
        assert any("falling back" in r.message for r in caplog.records)
        assert not any(
            k in JIT_KERNEL_NAMES for k in got.stats.kernel_totals()
        )

    def test_supports_is_the_swap_hook(self, monkeypatch):
        monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", True)
        assert JitExecutor().supports(SemiringProgram(PLUS_TIMES))
        if not NUMBA_AVAILABLE:
            monkeypatch.setattr(jitmod, "FORCE_INTERPRETED", False)
            assert not JitExecutor().supports(SemiringProgram(PLUS_TIMES))
