"""The repro-serve HTTP front end: routing, JSON shapes, error codes."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve import BatchPolicy, GraphRegistry, GraphService, make_server
from repro.serve.cli import _build_parser, build_service
from repro.store.snapshot import save_snapshot


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=8, edge_factor=8, seed=5))


@pytest.fixture(scope="module")
def server(sym):
    registry = GraphRegistry()
    registry.add_graph("g", sym)
    service = GraphService(
        registry, policy=BatchPolicy(max_batch_k=8, max_wait_ms=20.0)
    )
    http_server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()


def _get(server, path):
    port = server.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, body):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, document = _get(server, "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["graphs"] == 1

    def test_graphs_listing(self, server, sym):
        status, document = _get(server, "/graphs")
        assert status == 200
        (entry,) = document["graphs"]
        assert entry["name"] == "g"
        assert entry["n_vertices"] == sym.n_vertices
        assert entry["n_edges"] == sym.n_edges

    def test_stats_shape(self, server):
        status, document = _get(server, "/stats")
        assert status == 200
        assert {"scheduler", "cache", "graphs", "queries"} <= set(document)

    def test_bfs_query_full_values_match_engine(self, server, sym):
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0}
        )
        assert status == 200
        assert document["params"] == {"root": 0}
        expected = run_bfs(sym, 0).distances
        got = np.array(
            [np.inf if v is None else v for v in document["values"]]
        )
        assert np.array_equal(got, expected)
        assert document["n_vertices"] == sym.n_vertices

    def test_top_view_orders_distances_ascending(self, server):
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0, "top": 5}
        )
        assert status == 200
        top = document["top"]
        assert top[0] == [0, 0.0]
        assert all(a[1] <= b[1] for a, b in zip(top, top[1:]))

    def test_vertices_view(self, server):
        status, document = _post(
            server,
            "/query/sssp",
            {"graph": "g", "source": 0, "vertices": [0, 1]},
        )
        assert status == 200
        assert document["values"]["0"] == 0.0

    def test_ppr_top_is_descending_scores(self, server):
        status, document = _post(
            server,
            "/query/ppr",
            {"graph": "g", "source": 0, "iterations": 3, "top": 4},
        )
        assert status == 200
        top = document["top"]
        assert all(a[1] >= b[1] for a, b in zip(top, top[1:]))

    def test_repeat_query_served_from_cache(self, server):
        body = {"graph": "g", "root": 7, "top": 1}
        _post(server, "/query/bfs", body)
        status, document = _post(server, "/query/bfs", dict(body))
        assert status == 200
        assert document["cached"] is True

    def test_concurrent_http_clients_batch(self, server):
        roots = list(range(16, 24))
        with ThreadPoolExecutor(8) as pool:
            replies = list(
                pool.map(
                    lambda r: _post(
                        server, "/query/bfs", {"graph": "g", "root": r, "top": 1}
                    ),
                    roots,
                )
            )
        assert all(status == 200 for status, _ in replies)
        assert max(doc["batch_k"] for _, doc in replies) > 1

    def test_error_codes(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", {})[0] == 404
        assert _post(server, "/query/zzz", {"graph": "g"})[0] == 404
        assert _post(server, "/query/bfs", {"graph": "zzz", "root": 0})[0] == 404
        assert _post(server, "/query/bfs", {"graph": "g"})[0] == 400
        assert _post(server, "/query/bfs", {"graph": "g", "root": -2})[0] == 400
        assert (
            _post(
                server,
                "/query/bfs",
                {"graph": "g", "root": 0, "top": 1, "vertices": [0]},
            )[0]
            == 400
        )
        assert (
            _post(
                server,
                "/query/bfs",
                {"graph": "g", "root": 0, "vertices": [10**9]},
            )[0]
            == 400
        )
        # Malformed JSON body.
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query/bfs",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        # Malformed Content-Length header: still a JSON 400, not a
        # dropped connection.
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.putrequest("POST", "/query/bfs")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            reply = connection.getresponse()
            assert reply.status == 400
            assert "Content-Length" in json.loads(reply.read())["error"]
        finally:
            connection.close()

    def test_keepalive_survives_error_replies(self, server):
        """An error reply must not leave the POST body unread on a
        keep-alive connection — the leftover bytes would be parsed as
        the next request line and desynchronize every later exchange."""
        import http.client

        port = server.server_address[1]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            body = json.dumps({"graph": "g", "root": 0}).encode()
            # 404 path with a body, then reuse the same connection.
            connection.request("POST", "/nope", body=body)
            reply = connection.getresponse()
            assert reply.status == 404
            reply.read()
            connection.request("GET", "/healthz")
            reply = connection.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["status"] == "ok"
        finally:
            connection.close()

    def test_unexpected_failure_maps_to_500(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise ValueError("not a ReproError")

        monkeypatch.setattr(server.service, "query", boom)
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0}
        )
        assert status == 500
        assert "internal error" in document["error"]


class TestServeCLI:
    def test_build_service_from_snapshot_specs(self, tmp_path, sym, capsys):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(
            [
                "--graph", f"social={path}",
                "--max-batch-k", "4",
                "--max-wait-ms", "1",
                "--cache-size", "16",
            ]
        )
        service = build_service(args)
        try:
            assert service.registry.names() == ["social"]
            assert service.policy.max_batch_k == 4
            assert service.cache.capacity == 16
            result = service.query("social", "bfs", {"root": 0})
            assert np.array_equal(result.values, run_bfs(sym, 0).distances)
        finally:
            service.close()
        assert "hosting 'social'" in capsys.readouterr().out

    def test_bad_graph_specs_rejected(self):
        from repro.errors import ReproError

        for argv in ([], ["--graph", "noequals"], ["--graph", "=x"]):
            args = _build_parser().parse_args(argv)
            with pytest.raises(ReproError):
                build_service(args)


# ----------------------------------------------------------------------
# Governance over HTTP: deadlines, tenants, 429/504 mapping
# ----------------------------------------------------------------------
def _post_raw(server, path, body, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, dict(reply.headers), json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


@pytest.fixture()
def quota_server(sym):
    from repro.serve.quota import QuotaManager, TenantPolicy

    registry = GraphRegistry()
    registry.add_graph("g", sym)
    service = GraphService(
        registry,
        policy=BatchPolicy(max_batch_k=8, max_wait_ms=1.0),
        quota=QuotaManager(default=TenantPolicy(rate=1.0, burst=1)),
    )
    http_server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()


class TestGovernanceHTTP:
    # Roots 200+ are never queried elsewhere in this module: the shared
    # server's cache must not already hold the answers (a cache hit is
    # served even past the deadline — pinned below).
    def test_deadline_ms_body_param_maps_to_504(self, server):
        # An (effectively) already-expired deadline is refused at
        # admission and surfaces as retriable 504 + Retry-After.
        status, headers, document = _post_raw(
            server, "/query/bfs",
            {"graph": "g", "root": 200, "deadline_ms": 1e-6},
        )
        assert status == 504
        assert "Retry-After" in headers
        assert "deadline" in document["error"]

    def test_deadline_header_when_body_names_none(self, server):
        status, headers, document = _post_raw(
            server, "/query/bfs", {"graph": "g", "root": 201},
            headers={"X-Deadline-Ms": "0.000001"},
        )
        assert status == 504

    def test_body_deadline_wins_over_header(self, server):
        status, _, document = _post_raw(
            server, "/query/bfs",
            {"graph": "g", "root": 202, "deadline_ms": 60_000},
            headers={"X-Deadline-Ms": "0.000001"},
        )
        assert status == 200

    def test_cache_hit_is_served_even_past_the_deadline(self, server):
        """Deadline governance guards engine work; a cached answer is
        free and is returned rather than refused."""
        status, _, _ = _post_raw(
            server, "/query/bfs", {"graph": "g", "root": 203}
        )
        assert status == 200
        status, _, document = _post_raw(
            server, "/query/bfs",
            {"graph": "g", "root": 203, "deadline_ms": 1e-6},
        )
        assert status == 200
        assert document["cached"] is True

    def test_bad_deadline_is_a_400(self, server):
        for bad in ("soon", -5, 0):
            status, _, document = _post_raw(
                server, "/query/bfs",
                {"graph": "g", "root": 0, "deadline_ms": bad},
            )
            assert status == 400, f"deadline_ms={bad!r} not rejected"
            assert "deadline" in document["error"]

    def test_quota_flood_gets_429_with_retry_after(self, quota_server):
        body = {"graph": "g", "root": 0}
        status, _, _ = _post_raw(
            quota_server, "/query/bfs", body, headers={"X-Tenant": "noisy"}
        )
        assert status == 200
        status, headers, document = _post_raw(
            quota_server, "/query/bfs", body, headers={"X-Tenant": "noisy"}
        )
        assert status == 429
        assert float(headers["Retry-After"]) > 0
        assert "rate" in document["error"]
        # A different tenant is admitted while 'noisy' is shed.
        status, _, _ = _post_raw(
            quota_server, "/query/bfs", body, headers={"X-Tenant": "polite"}
        )
        assert status == 200

    def test_stats_surface_governance_counters(self, quota_server):
        body = {"graph": "g", "root": 3}
        _post_raw(
            quota_server, "/query/bfs", body, headers={"X-Tenant": "alice"}
        )
        status, document = _get(quota_server, "/stats")
        assert status == 200
        governance = document["governance"]
        assert governance["quota"]["tenants"]["alice"]["admitted"] == 1
        assert "cancelled_lanes" in governance
        assert "deadline_refused" in governance


class TestGovernanceCLI:
    def test_governance_flags_build_quota_and_deadline(self, tmp_path, sym):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(
            [
                "--graph", f"g={path}",
                "--default-deadline-ms", "5000",
                "--tenant-rate", "10",
                "--tenant-burst", "20",
                "--tenant-max-inflight", "4",
                "--tenant-queue-share", "0.5",
            ]
        )
        service = build_service(args)
        try:
            assert service.default_deadline == 5.0
            policy = service.quota.default
            assert policy.rate == 10.0
            assert policy.burst == 20.0
            assert policy.max_in_flight == 4
            assert policy.max_queue_share == 0.5
        finally:
            service.close()

    def test_governance_defaults_off(self, tmp_path, sym):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(["--graph", f"g={path}"])
        service = build_service(args)
        try:
            assert service.quota is None
            assert service.default_deadline is None
        finally:
            service.close()


@pytest.fixture()
def metrics_server(sym):
    from repro.obs import ServeTelemetry

    registry = GraphRegistry()
    registry.add_graph("g", sym)
    service = GraphService(
        registry,
        policy=BatchPolicy(max_batch_k=8, max_wait_ms=5.0),
        telemetry=ServeTelemetry(),
    )
    http_server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()


def _get_raw(server, path, headers=None):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, dict(reply.headers), reply.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestObservabilityHTTP:
    def test_metrics_endpoint_serves_prometheus_text(self, metrics_server):
        status, _, document = _post_raw(
            metrics_server, "/query/bfs", {"graph": "g", "root": 1}
        )
        assert status == 200
        status, headers, body = _get_raw(metrics_server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert '# TYPE repro_requests_total counter' in text
        assert (
            'repro_requests_total{graph="g", kind="bfs", status="ok"} 1'
            in text
        )
        assert "# TYPE repro_request_latency_seconds histogram" in text
        assert "repro_batch_lanes_count 1" in text
        assert "repro_cache_hit_rate" in text

    def test_metrics_404_without_telemetry(self, server):
        status, _, body = _get_raw(server, "/metrics")
        assert status == 404
        assert b"ServeTelemetry" in body

    def test_request_id_header_echoed(self, metrics_server):
        status, headers, document = _post_raw(
            metrics_server, "/query/bfs", {"graph": "g", "root": 2},
            headers={"X-Request-Id": "trace-me-42"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "trace-me-42"
        assert document["request_id"] == "trace-me-42"

    def test_request_id_generated_when_absent(self, metrics_server):
        status, headers, document = _post_raw(
            metrics_server, "/query/bfs", {"graph": "g", "root": 3}
        )
        assert status == 200
        assert len(headers["X-Request-Id"]) == 32
        assert document["request_id"] == headers["X-Request-Id"]

    def test_malformed_request_id_replaced(self, metrics_server):
        status, headers, _ = _post_raw(
            metrics_server, "/query/bfs", {"graph": "g", "root": 4},
            headers={"X-Request-Id": "bad id; with spaces"},
        )
        assert status == 200
        assert headers["X-Request-Id"] != "bad id; with spaces"
        assert len(headers["X-Request-Id"]) == 32

    def test_error_payload_carries_request_id(self, metrics_server):
        status, headers, document = _post_raw(
            metrics_server, "/query/bfs", {"graph": "nope", "root": 0},
            headers={"X-Request-Id": "err-trace-1"},
        )
        assert status == 404
        assert document["request_id"] == "err-trace-1"
        assert headers["X-Request-Id"] == "err-trace-1"

    def test_quota_429_carries_request_id(self, quota_server):
        # Burst 1 at 1 qps: the second immediate request is refused.
        _post_raw(quota_server, "/query/bfs", {"graph": "g", "root": 1})
        status, headers, document = _post_raw(
            quota_server, "/query/bfs", {"graph": "g", "root": 2},
            headers={"X-Request-Id": "quota-trace-1"},
        )
        assert status == 429
        assert document["request_id"] == "quota-trace-1"
        assert headers["X-Request-Id"] == "quota-trace-1"

    def test_stats_uptime_and_started_at(self, metrics_server):
        status, document = _get(metrics_server, "/stats")
        assert status == 200
        assert document["uptime_seconds"] >= 0.0
        assert document["started_at"] > 1e9


class TestObservabilityCLI:
    def test_cli_always_builds_telemetry(self, tmp_path, sym):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(["--graph", f"g={path}"])
        service = build_service(args)
        try:
            assert service.telemetry is not None
            assert service.telemetry.slow_log is None  # opt-in
        finally:
            service.close()

    def test_slow_query_flag_arms_the_log(self, tmp_path, sym):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(
            ["--graph", f"g={path}", "--slow-query-ms", "250"]
        )
        service = build_service(args)
        try:
            assert service.telemetry.slow_log is not None
            assert service.telemetry.slow_log.threshold_ms == 250.0
        finally:
            service.close()
