"""The repro-serve HTTP front end: routing, JSON shapes, error codes."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve import BatchPolicy, GraphRegistry, GraphService, make_server
from repro.serve.cli import _build_parser, build_service
from repro.store.snapshot import save_snapshot


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=8, edge_factor=8, seed=5))


@pytest.fixture(scope="module")
def server(sym):
    registry = GraphRegistry()
    registry.add_graph("g", sym)
    service = GraphService(
        registry, policy=BatchPolicy(max_batch_k=8, max_wait_ms=20.0)
    )
    http_server = make_server(service, "127.0.0.1", 0)
    thread = threading.Thread(target=http_server.serve_forever, daemon=True)
    thread.start()
    yield http_server
    http_server.shutdown()
    http_server.server_close()
    service.close()


def _get(server, path):
    port = server.server_address[1]
    try:
        with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(server, path, body):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestEndpoints:
    def test_healthz(self, server):
        status, document = _get(server, "/healthz")
        assert status == 200
        assert document["status"] == "ok"
        assert document["graphs"] == 1

    def test_graphs_listing(self, server, sym):
        status, document = _get(server, "/graphs")
        assert status == 200
        (entry,) = document["graphs"]
        assert entry["name"] == "g"
        assert entry["n_vertices"] == sym.n_vertices
        assert entry["n_edges"] == sym.n_edges

    def test_stats_shape(self, server):
        status, document = _get(server, "/stats")
        assert status == 200
        assert {"scheduler", "cache", "graphs", "queries"} <= set(document)

    def test_bfs_query_full_values_match_engine(self, server, sym):
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0}
        )
        assert status == 200
        assert document["params"] == {"root": 0}
        expected = run_bfs(sym, 0).distances
        got = np.array(
            [np.inf if v is None else v for v in document["values"]]
        )
        assert np.array_equal(got, expected)
        assert document["n_vertices"] == sym.n_vertices

    def test_top_view_orders_distances_ascending(self, server):
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0, "top": 5}
        )
        assert status == 200
        top = document["top"]
        assert top[0] == [0, 0.0]
        assert all(a[1] <= b[1] for a, b in zip(top, top[1:]))

    def test_vertices_view(self, server):
        status, document = _post(
            server,
            "/query/sssp",
            {"graph": "g", "source": 0, "vertices": [0, 1]},
        )
        assert status == 200
        assert document["values"]["0"] == 0.0

    def test_ppr_top_is_descending_scores(self, server):
        status, document = _post(
            server,
            "/query/ppr",
            {"graph": "g", "source": 0, "iterations": 3, "top": 4},
        )
        assert status == 200
        top = document["top"]
        assert all(a[1] >= b[1] for a, b in zip(top, top[1:]))

    def test_repeat_query_served_from_cache(self, server):
        body = {"graph": "g", "root": 7, "top": 1}
        _post(server, "/query/bfs", body)
        status, document = _post(server, "/query/bfs", dict(body))
        assert status == 200
        assert document["cached"] is True

    def test_concurrent_http_clients_batch(self, server):
        roots = list(range(16, 24))
        with ThreadPoolExecutor(8) as pool:
            replies = list(
                pool.map(
                    lambda r: _post(
                        server, "/query/bfs", {"graph": "g", "root": r, "top": 1}
                    ),
                    roots,
                )
            )
        assert all(status == 200 for status, _ in replies)
        assert max(doc["batch_k"] for _, doc in replies) > 1

    def test_error_codes(self, server):
        assert _get(server, "/nope")[0] == 404
        assert _post(server, "/nope", {})[0] == 404
        assert _post(server, "/query/zzz", {"graph": "g"})[0] == 404
        assert _post(server, "/query/bfs", {"graph": "zzz", "root": 0})[0] == 404
        assert _post(server, "/query/bfs", {"graph": "g"})[0] == 400
        assert _post(server, "/query/bfs", {"graph": "g", "root": -2})[0] == 400
        assert (
            _post(
                server,
                "/query/bfs",
                {"graph": "g", "root": 0, "top": 1, "vertices": [0]},
            )[0]
            == 400
        )
        assert (
            _post(
                server,
                "/query/bfs",
                {"graph": "g", "root": 0, "vertices": [10**9]},
            )[0]
            == 400
        )
        # Malformed JSON body.
        port = server.server_address[1]
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/query/bfs",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.code == 400
        # Malformed Content-Length header: still a JSON 400, not a
        # dropped connection.
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            connection.putrequest("POST", "/query/bfs")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            reply = connection.getresponse()
            assert reply.status == 400
            assert "Content-Length" in json.loads(reply.read())["error"]
        finally:
            connection.close()

    def test_keepalive_survives_error_replies(self, server):
        """An error reply must not leave the POST body unread on a
        keep-alive connection — the leftover bytes would be parsed as
        the next request line and desynchronize every later exchange."""
        import http.client

        port = server.server_address[1]
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            body = json.dumps({"graph": "g", "root": 0}).encode()
            # 404 path with a body, then reuse the same connection.
            connection.request("POST", "/nope", body=body)
            reply = connection.getresponse()
            assert reply.status == 404
            reply.read()
            connection.request("GET", "/healthz")
            reply = connection.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["status"] == "ok"
        finally:
            connection.close()

    def test_unexpected_failure_maps_to_500(self, server, monkeypatch):
        def boom(*args, **kwargs):
            raise ValueError("not a ReproError")

        monkeypatch.setattr(server.service, "query", boom)
        status, document = _post(
            server, "/query/bfs", {"graph": "g", "root": 0}
        )
        assert status == 500
        assert "internal error" in document["error"]


class TestServeCLI:
    def test_build_service_from_snapshot_specs(self, tmp_path, sym, capsys):
        path = tmp_path / "g.gmsnap"
        save_snapshot(sym, path)
        args = _build_parser().parse_args(
            [
                "--graph", f"social={path}",
                "--max-batch-k", "4",
                "--max-wait-ms", "1",
                "--cache-size", "16",
            ]
        )
        service = build_service(args)
        try:
            assert service.registry.names() == ["social"]
            assert service.policy.max_batch_k == 4
            assert service.cache.capacity == 16
            result = service.query("social", "bfs", {"root": 0})
            assert np.array_equal(result.values, run_bfs(sym, 0).distances)
        finally:
            service.close()
        assert "hosting 'social'" in capsys.readouterr().out

    def test_bad_graph_specs_rejected(self):
        from repro.errors import ReproError

        for argv in ([], ["--graph", "noequals"], ["--graph", "=x"]):
            args = _build_parser().parse_args(argv)
            with pytest.raises(ReproError):
                build_service(args)
