"""Closed-loop adversarial governance harness (``-m stress``).

Three populations hit one service at once:

- a **runaway** tenant submits expensive PPR queries with deadlines it
  cannot possibly meet,
- a **flooding** tenant fires requests far above its token-bucket rate,
- **well-behaved** tenants issue ordinary queries with sane deadlines.

The containment claims under test: the well-behaved tenants' requests
all complete, bitwise identical to sequential reference runs, within
their deadlines; runaway lanes are cancelled at superstep granularity
(the overrun past the deadline is bounded by a couple of superstep
durations, asserted from :class:`RunStats`); and the flood is shed with
429-style refusals that never leak into other tenants' error budgets.

These are load tests with real clocks — serial ``stress`` CI lane, not
the fast lane.
"""

from __future__ import annotations

import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_personalized_pagerank
from repro.errors import DeadlineExceededError, QuotaExceededError
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize, with_random_weights
from repro.serve import BatchPolicy, GraphRegistry, GraphService
from repro.serve.quota import QuotaManager, TenantPolicy

pytestmark = pytest.mark.stress

#: Big enough that one PPR superstep costs real time (so a runaway
#: cannot finish, let alone converge, inside its tiny deadline) while a
#: full 1000-superstep run still fits a stress-lane budget.
SCALE = 11

RUNAWAY_DEADLINE = 0.05
RUNAWAY_ITERATIONS = 1000


@pytest.fixture(scope="module")
def rmat():
    return with_random_weights(
        rmat_graph(scale=SCALE, edge_factor=8, seed=21), seed=22
    )


@pytest.fixture(scope="module")
def rmat_sym(rmat):
    return symmetrize(rmat)


def _registry(rmat, rmat_sym):
    registry = GraphRegistry()
    registry.add_graph("dir", rmat)
    registry.add_graph("sym", rmat_sym)
    return registry


def _overrun_ms(reason: str) -> float:
    match = re.search(r"\(([\d.]+) ms past\)", reason)
    assert match, f"unparseable cancel reason: {reason!r}"
    return float(match.group(1))


class TestRunawayContainment:
    def test_cobatched_runaways_cancelled_survivors_bitwise(
        self, rmat, rmat_sym
    ):
        """Two runaway lanes and two well-behaved lanes share one K=4
        SpMM batch: the runaways must be cancelled at a superstep
        boundary while the survivors' results stay bitwise identical to
        sequential runs."""
        policy = BatchPolicy(max_batch_k=4, max_wait_ms=5_000.0)
        good_sources, runaway_sources = (1, 2), (3, 4)
        with GraphService(_registry(rmat, rmat_sym), policy=policy) as service:
            with ThreadPoolExecutor(4) as pool:
                good = [
                    pool.submit(
                        service.query, "dir", "ppr",
                        {"source": s, "iterations": RUNAWAY_ITERATIONS},
                    )
                    for s in good_sources
                ]
                runaway = [
                    pool.submit(
                        service.query, "dir", "ppr",
                        {"source": s, "iterations": RUNAWAY_ITERATIONS},
                        deadline=RUNAWAY_DEADLINE,
                    )
                    for s in runaway_sources
                ]
                results = [f.result(timeout=120) for f in good]
                failures = []
                for future in runaway:
                    with pytest.raises(DeadlineExceededError) as excinfo:
                        future.result(timeout=120)
                    failures.append(excinfo.value)
            governance = service.stats()["governance"]

        # Survivors: bitwise equality with the sequential engine.
        for source, result in zip(good_sources, results):
            reference = run_personalized_pagerank(
                rmat, source, max_iterations=RUNAWAY_ITERATIONS
            )
            assert np.array_equal(result.values, reference.ranks), (
                f"survivor lane (source {source}) diverged from its "
                f"sequential run after co-batched lanes were cancelled"
            )
            # They shared the batch with the runaways.
            assert result.batch_k == 4

        # Runaways: cancelled cooperatively, at superstep granularity.
        assert governance["cancelled_lanes"] == 2
        for failure in failures:
            stats = failure.run_stats
            assert stats is not None and stats.cancelled
            assert "deadline exceeded" in stats.cancel_reason
            assert 0 < stats.n_supersteps < RUNAWAY_ITERATIONS
            # <= 2 supersteps past the deadline: the overrun reported at
            # the boundary that noticed is bounded by twice the longest
            # superstep the lane actually executed (plus scheduler
            # noise).
            superstep_ms = [
                1e3 * it.seconds for it in stats.iterations if it.seconds > 0
            ]
            assert superstep_ms, "cancelled lane recorded no supersteps"
            bound = 2.0 * max(superstep_ms) + 5.0
            overrun = _overrun_ms(stats.cancel_reason)
            assert overrun <= bound, (
                f"cancellation lagged the deadline by {overrun:.1f} ms, "
                f"more than two supersteps (~{bound:.1f} ms): "
                f"not superstep-granular"
            )


class TestClosedLoopAdversarialMix:
    def test_well_behaved_tenants_ride_out_the_storm(self, rmat, rmat_sym):
        """Runaway + flood + well-behaved, concurrently, one service:
        every well-behaved request completes correctly within its
        deadline; the flood is shed with quota refusals; runaways are
        cancelled — and none of it contaminates the others."""
        quota = QuotaManager(
            per_tenant={"flood": TenantPolicy(rate=20.0, burst=4)},
        )
        policy = BatchPolicy(max_batch_k=8, max_wait_ms=2.0, max_queue=64)
        stop = threading.Event()
        flood_outcomes = {"ok": 0, "shed": 0, "other": 0}
        runaway_outcomes = {"cancelled": 0, "expired": 0, "other": 0}

        with GraphService(
            _registry(rmat, rmat_sym), policy=policy, quota=quota
        ) as service:

            def flood() -> None:
                root = 0
                while not stop.is_set():
                    root = (root + 1) % rmat_sym.n_vertices
                    try:
                        service.query(
                            "sym", "bfs", {"root": root}, tenant="flood",
                            deadline=30.0,
                        )
                        flood_outcomes["ok"] += 1
                    except QuotaExceededError:
                        flood_outcomes["shed"] += 1
                    except Exception:
                        flood_outcomes["other"] += 1

            def runaways() -> None:
                source = 0
                while not stop.is_set():
                    source = (source + 1) % rmat.n_vertices
                    try:
                        service.query(
                            "dir", "ppr",
                            {
                                "source": source,
                                "iterations": RUNAWAY_ITERATIONS,
                            },
                            tenant="runaway",
                            deadline=RUNAWAY_DEADLINE,
                        )
                        runaway_outcomes["other"] += 1  # should not finish
                    except DeadlineExceededError as exc:
                        if exc.run_stats is not None:
                            runaway_outcomes["cancelled"] += 1
                        else:
                            runaway_outcomes["expired"] += 1
                    except Exception:
                        runaway_outcomes["other"] += 1

            adversaries = [
                threading.Thread(target=flood, daemon=True),
                threading.Thread(target=flood, daemon=True),
                threading.Thread(target=runaways, daemon=True),
            ]
            for thread in adversaries:
                thread.start()

            # The well-behaved closed loop, under way while the storm
            # rages: every request must finish, in time, correctly.
            well_behaved_roots = [5, 17, 101, 255, 600]
            latencies = []
            try:
                for _ in range(4):
                    for tenant in ("alice", "bob"):
                        for root in well_behaved_roots:
                            t0 = time.monotonic()
                            result = service.query(
                                "sym", "bfs", {"root": root},
                                tenant=tenant, deadline=30.0,
                            )
                            latencies.append(time.monotonic() - t0)
                            expected = run_bfs(rmat_sym, root).distances
                            assert np.array_equal(result.values, expected)
            finally:
                stop.set()
                for thread in adversaries:
                    thread.join(timeout=60)
            stats = service.stats()

        assert max(latencies) < 30.0, "a well-behaved request blew its deadline"
        # The flood was actually flooding, and actually shed.
        assert flood_outcomes["shed"] > 0, f"flood never shed: {flood_outcomes}"
        assert flood_outcomes["other"] == 0, f"flood saw {flood_outcomes}"
        # Runaways were contained — cancelled mid-run or dropped while
        # queued, never left running.
        assert runaway_outcomes["cancelled"] > 0, (
            f"no runaway was engine-cancelled: {runaway_outcomes}"
        )
        assert runaway_outcomes["other"] == 0, (
            f"a runaway finished or failed oddly: {runaway_outcomes}"
        )
        tenants = stats["governance"]["quota"]["tenants"]
        assert tenants["flood"]["rejected_rate"] == flood_outcomes["shed"]
        assert tenants["alice"]["admitted"] == 20
        assert tenants["alice"].get("rejected_rate", 0) == 0
        assert stats["governance"]["cancelled_lanes"] >= (
            runaway_outcomes["cancelled"]
        )
