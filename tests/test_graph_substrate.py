"""Graph container, builder, and preprocessing tests."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.builder import build_graph, edges_from_iterable
from repro.graph.graph import Graph
from repro.graph.preprocess import (
    induced_subgraph,
    largest_connected_component,
    remove_self_loops,
    symmetrize,
    to_dag,
    with_random_weights,
    with_unit_weights,
)
from repro.matrix.coo import COOMatrix

from tests.conftest import as_networkx


class TestGraphContainer:
    def test_from_edges(self):
        g = Graph.from_edges(
            3, np.array([0, 1]), np.array([1, 2]), np.array([5.0, 6.0])
        )
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            Graph(COOMatrix((2, 3), np.array([0]), np.array([1])))

    def test_degrees(self, fig1):
        assert fig1.out_degrees().tolist() == [3, 1, 1, 1]
        assert fig1.in_degrees().tolist() == [1, 1, 2, 2]

    def test_csr_views_cached(self, fig1):
        assert fig1.out_csr() is fig1.out_csr()
        assert fig1.in_csr() is fig1.in_csr()

    def test_partitions_cached_per_key(self, fig1):
        p1 = fig1.out_partitions(2, "rows")
        assert fig1.out_partitions(2, "rows") is p1
        assert fig1.out_partitions(3, "rows") is not p1

    def test_invalidate_caches(self, fig1):
        p1 = fig1.out_partitions(2, "rows")
        fig1.invalidate_caches()
        assert fig1.out_partitions(2, "rows") is not p1

    def test_out_partitions_orientation(self, fig1):
        """Out view stores A^T: columns are message sources."""
        block = fig1.out_partitions(1).blocks[0]
        rows, _ = block.column(0)  # messages from vertex 0 (A)
        assert sorted(rows.tolist()) == [1, 2, 3]  # A's out-neighbors

    def test_vertex_state_management(self, fig1):
        fig1.set_all_active()
        assert fig1.active_count == 4
        fig1.set_inactive(0)
        assert fig1.active_count == 3
        fig1.set_all_inactive()
        fig1.set_active(2)
        assert fig1.active_count == 1
        with pytest.raises(GraphError):
            fig1.set_active(99)

    def test_vertex_properties(self, fig1):
        fig1.set_all_vertex_property(7.0)
        assert fig1.get_vertex_property(1) == 7.0
        fig1.set_vertex_property(1, 3.0)
        assert fig1.get_vertex_property(1) == 3.0
        with pytest.raises(GraphError):
            fig1.set_vertex_property(-1, 0.0)

    def test_repr(self, fig1):
        assert "n_vertices=4" in repr(fig1)


class TestBuilder:
    def test_from_tuples(self):
        g = build_graph([(0, 1), (1, 2)])
        assert g.n_vertices == 3
        assert g.n_edges == 2

    def test_weighted_tuples(self):
        g = build_graph([(0, 1, 2.5)])
        assert g.edges.vals.tolist() == [2.5]

    def test_mixed_tuples_rejected(self):
        with pytest.raises(GraphError):
            build_graph([(0, 1), (1, 2, 3.0)])

    def test_bad_tuple_arity(self):
        with pytest.raises(GraphError):
            build_graph([(0, 1, 2, 3)])

    def test_self_loops_removed_by_default(self):
        g = build_graph([(0, 0), (0, 1)])
        assert g.n_edges == 1

    def test_self_loops_kept_on_request(self):
        g = build_graph([(0, 0), (0, 1)], remove_self_loops=False)
        assert g.n_edges == 2

    def test_dedup(self):
        g = build_graph([(0, 1, 1.0), (0, 1, 9.0)])
        assert g.n_edges == 1
        assert g.edges.vals.tolist() == [9.0]

    def test_symmetrize_flag(self):
        g = build_graph([(0, 1)], symmetrize=True)
        assert g.n_edges == 2

    def test_explicit_vertex_count(self):
        g = build_graph([(0, 1)], n_vertices=10)
        assert g.n_vertices == 10

    def test_coo_input_shape_conflict(self):
        coo = COOMatrix((3, 3), np.array([0]), np.array([1]))
        with pytest.raises(GraphError):
            build_graph(coo, n_vertices=5)

    def test_edges_from_iterable(self):
        src, dst, w = edges_from_iterable([(1, 2, 0.5), (3, 4, 1.5)])
        assert src.tolist() == [1, 3]
        assert dst.tolist() == [2, 4]
        assert w.tolist() == [0.5, 1.5]


class TestPreprocess:
    def test_remove_self_loops(self):
        g = build_graph([(0, 0), (0, 1)], remove_self_loops=False)
        assert remove_self_loops(g).n_edges == 1

    def test_symmetrize_makes_symmetric(self, rmat_small):
        sym = symmetrize(rmat_small)
        dense = np.zeros((sym.n_vertices, sym.n_vertices), dtype=bool)
        dense[sym.edges.rows, sym.edges.cols] = True
        assert np.array_equal(dense, dense.T)

    def test_to_dag_upper_triangular(self, rmat_small):
        dag = to_dag(rmat_small)
        assert np.all(dag.edges.rows < dag.edges.cols)

    def test_to_dag_preserves_undirected_edge_count(self, rmat_small):
        sym = symmetrize(rmat_small)
        dag = to_dag(rmat_small)
        assert dag.n_edges == sym.n_edges // 2

    def test_unit_weights(self):
        g = build_graph([(0, 1, 5.0), (1, 2, 7.0)])
        assert with_unit_weights(g).edges.vals.tolist() == [1, 1]

    def test_random_weights_range(self, rmat_small):
        g = with_random_weights(rmat_small, low=2.0, high=3.0, seed=1)
        assert g.edges.vals.min() >= 2.0
        assert g.edges.vals.max() < 3.0

    def test_random_weights_deterministic(self, rmat_small):
        a = with_random_weights(rmat_small, seed=5).edges.vals
        b = with_random_weights(rmat_small, seed=5).edges.vals
        assert np.array_equal(a, b)

    def test_random_weights_bad_range(self, rmat_small):
        with pytest.raises(GraphError):
            with_random_weights(rmat_small, low=5.0, high=5.0)

    def test_induced_subgraph(self):
        g = build_graph([(0, 1), (1, 2), (2, 3)])
        sub = induced_subgraph(g, np.array([1, 2]))
        assert sub.n_vertices == 2
        assert sub.n_edges == 1  # only 1->2 survives, relabelled 0->1
        assert sub.edges.rows.tolist() == [0]
        assert sub.edges.cols.tolist() == [1]

    def test_induced_subgraph_bad_ids(self):
        g = build_graph([(0, 1)])
        with pytest.raises(GraphError):
            induced_subgraph(g, np.array([5]))

    def test_largest_connected_component(self):
        g = build_graph([(0, 1), (1, 2), (3, 4)], n_vertices=6)
        lcc = largest_connected_component(g)
        assert lcc.n_vertices == 3
        assert lcc.n_edges == 2

    def test_lcc_matches_networkx(self, rmat_small):
        lcc = largest_connected_component(rmat_small)
        undirected = as_networkx(rmat_small, directed=False)
        expected = max(nx.connected_components(undirected), key=len)
        assert lcc.n_vertices == len(expected)
