"""Kill-and-recover: SIGKILL a real server at every crash point, restart,
verify the recovered state bitwise against an independent replay.

Unlike ``tests/test_faults.py`` (in-process, ``raise`` action), these
tests crash an actual ``repro-serve`` subprocess — ``REPRO_FAULTS``
arms a crash point with the ``kill`` action, concurrent clients put the
server under live mutation/query load until the point fires (SIGKILL:
no cleanup, no flushes, the honest crash), and a fresh server over the
same state directory must recover to exactly the reference replay of
whatever survived on disk.

The invariant, per crash point: **no acknowledged mutation is ever
lost** (every HTTP-200 epoch is present after recovery), unacknowledged
work may be dropped or kept (at-least-once), and the recovered graph is
bitwise equal to replaying the surviving log over the newest snapshot.

The SIGTERM test is the graceful twin: drain under load, exit 0, zero
acknowledged requests lost.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.dynamic import DeltaGraph
from repro.faults import CRASH_POINTS
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.store.delta_log import DeltaLog
from repro.store.snapshot import load_snapshot, save_snapshot

pytestmark = pytest.mark.faults

REPO_ROOT = Path(__file__).resolve().parent.parent
STARTUP_SECONDS = 30.0


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=6, edge_factor=8, seed=33))


@pytest.fixture()
def state_dir(tmp_path, sym):
    save_snapshot(sym, tmp_path / "g.gmsnap")
    (tmp_path / "wal").mkdir()
    return tmp_path


class _Server:
    """One repro-serve subprocess with parsed URL and captured output."""

    def __init__(self, state_dir: Path, *, faults_spec=None, extra_args=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_FAULTS", None)
        if faults_spec:
            env["REPRO_FAULTS"] = faults_spec
        self.proc = subprocess.Popen(
            [
                sys.executable, "-u", "-m", "repro.serve.cli",
                "--graph", f"g={state_dir / 'g.gmsnap'}",
                "--delta-log-dir", str(state_dir / "wal"),
                "--host", "127.0.0.1", "--port", "0",
                "--max-wait-ms", "1",
                *extra_args,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.lines: list[str] = []
        self.url: str | None = None
        self._ready = threading.Event()
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        if not self._ready.wait(timeout=STARTUP_SECONDS):
            self.kill()
            raise RuntimeError(
                f"server did not start:\n{''.join(self.lines)}"
            )

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line)
            if "listening on http://" in line:
                self.url = line.split("listening on ")[1].split()[0]
                self._ready.set()
        self._ready.set()  # EOF: unblock a waiter even on startup failure

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=10.0)

    def output(self) -> str:
        return "".join(self.lines)


def _post(url, path, body, timeout=10.0):
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


def _reference(state_dir: Path, sym):
    """Independent replay of the on-disk state: (epoch, bfs distances)."""
    wal = state_dir / "wal"
    compacted = sorted(
        (int(p.stem.rsplit("epoch", 1)[1]), p)
        for p in wal.glob("g-epoch*.gmsnap")
    )
    if compacted:
        epoch, path = compacted[-1]
        graph = load_snapshot(path)
    else:
        epoch, graph = 0, load_snapshot(state_dir / "g.gmsnap")
    log_path = wal / "g.gmdelta"
    if log_path.exists():
        for batch in DeltaLog(log_path).replay(strict=False):
            if batch.epoch <= epoch:
                continue
            graph = (
                graph if isinstance(graph, DeltaGraph) else DeltaGraph(graph)
            )
            graph = graph.apply_delta(batch.inserts(), batch.deletes())
            epoch = batch.epoch
    return epoch, run_bfs(graph, 0).distances


def _json_distances(distances: np.ndarray) -> list:
    return [float(v) if np.isfinite(v) else None for v in distances]


def _mutation_load(url, acked: list, stop: threading.Event, seed: int):
    """Hammer mutations until the server dies; record acknowledged epochs."""
    rng = np.random.default_rng(seed)
    while not stop.is_set():
        src = rng.integers(0, 64, 4).tolist()
        dst = rng.integers(0, 64, 4).tolist()
        try:
            status, body = _post(
                url, "/graphs/g/edges", {"insert": list(map(list, zip(src, dst)))}
            )
            if status == 200:
                acked.append(body["epoch"])
        except (urllib.error.URLError, OSError, ConnectionError):
            return  # the server crashed mid-request: that batch is unacked
        except urllib.error.HTTPError:
            pass


def _verify_recovery(state_dir, sym, acked):
    """Restart over the crashed state; recovered == reference replay."""
    ref_epoch, ref_distances = _reference(state_dir, sym)
    # Zero acknowledged mutations lost: every 200-acked epoch survived.
    if acked:
        assert ref_epoch >= max(acked), (
            f"acked epoch {max(acked)} lost (recovered epoch {ref_epoch})"
        )
    server = _Server(state_dir)
    try:
        status, graphs = _get(server.url, "/graphs")
        assert status == 200
        (entry,) = graphs["graphs"]
        assert entry["epoch"] == ref_epoch
        status, doc = _post(server.url, "/query/bfs", {"graph": "g", "root": 0})
        assert status == 200
        assert doc["values"] == _json_distances(ref_distances)
    finally:
        server.kill()


def _get(url, path, timeout=10.0):
    with urllib.request.urlopen(url + path, timeout=timeout) as reply:
        return reply.status, json.loads(reply.read())


class TestKillAndRecover:
    """SIGKILL at every crash point under live load, then recover."""

    MUTATION_POINTS = (
        "delta_log.append.before",
        "delta_log.append.torn",
        "delta_log.append.after",
    )
    COMPACTION_POINTS = (
        "delta_log.truncate.before",
        "compact.before_snapshot",
        "compact.after_snapshot",
        "snapshot.before_rename",
    )

    @pytest.mark.parametrize("point", MUTATION_POINTS)
    def test_append_window(self, state_dir, sym, point):
        self._crash_under_mutation(state_dir, sym, point, extra_args=())

    @pytest.mark.parametrize("point", COMPACTION_POINTS)
    def test_compaction_window(self, state_dir, sym, point):
        # A tiny threshold makes the very first mutations compact, so
        # the armed point fires within the load window.
        self._crash_under_mutation(
            state_dir, sym, point,
            extra_args=("--compact-threshold", "0.01"),
        )

    def _crash_under_mutation(self, state_dir, sym, point, *, extra_args):
        server = _Server(
            state_dir, faults_spec=f"{point}=kill", extra_args=extra_args
        )
        acked: list = []
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=_mutation_load,
                args=(server.url, acked, stop, seed),
                daemon=True,
            )
            for seed in range(3)
        ]
        for thread in threads:
            thread.start()
        died = _wait_dead(server.proc, timeout=60.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=15.0)
        assert died, f"{point} never fired under mutation load"
        assert server.proc.returncode == -signal.SIGKILL
        _verify_recovery(state_dir, sym, acked)

    def test_dispatch_crash(self, state_dir, sym):
        """Dying with admitted queries on the dispatcher thread."""
        server = _Server(
            state_dir, faults_spec="serve.dispatch.before=kill"
        )
        # A couple of durable mutations first, so recovery has real work.
        acked = []
        for i in range(3):
            status, body = _post(
                server.url, "/graphs/g/edges", {"insert": [[i, i + 40]]}
            )
            assert status == 200
            acked.append(body["epoch"])
        with pytest.raises((urllib.error.URLError, OSError, ConnectionError)):
            _post(server.url, "/query/bfs", {"graph": "g", "root": 0})
        assert _wait_dead(server.proc, timeout=30.0)
        assert server.proc.returncode == -signal.SIGKILL
        _verify_recovery(state_dir, sym, acked)

    def test_fsync_mode_survives_too(self, state_dir, sym):
        """The torn-append crash with --fsync on: same recovery contract."""
        server = _Server(
            state_dir,
            faults_spec="delta_log.append.torn=kill",
            extra_args=("--fsync",),
        )
        acked: list = []
        stop = threading.Event()
        thread = threading.Thread(
            target=_mutation_load, args=(server.url, acked, stop, 7),
            daemon=True,
        )
        thread.start()
        died = _wait_dead(server.proc, timeout=60.0)
        stop.set()
        thread.join(timeout=15.0)
        assert died
        _verify_recovery(state_dir, sym, acked)


def _wait_dead(proc, timeout: float) -> bool:
    try:
        proc.wait(timeout=timeout)
        return True
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10.0)
        return False


class TestGracefulDrain:
    def test_sigterm_loses_zero_acked_requests(self, state_dir, sym):
        """Closed loop: SIGTERM under live load; every ack survives."""
        server = _Server(state_dir)
        acked: list = []
        outcomes: list = []
        stop = threading.Event()

        def load(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                try:
                    if rng.random() < 0.5:
                        status, body = _post(
                            server.url,
                            "/graphs/g/edges",
                            {"insert": [[int(rng.integers(64)),
                                         int(rng.integers(64))]]},
                        )
                        if status == 200:
                            acked.append(body["epoch"])
                        outcomes.append(status)
                    else:
                        status, _body = _post(
                            server.url,
                            "/query/bfs",
                            {"graph": "g", "root": int(rng.integers(64)),
                             "top": 4},
                        )
                        outcomes.append(status)
                except urllib.error.HTTPError as exc:
                    outcomes.append(exc.code)
                except (urllib.error.URLError, OSError, ConnectionError):
                    # Refused after the listener closed: never admitted.
                    outcomes.append("refused")

        threads = [
            threading.Thread(target=load, args=(seed,), daemon=True)
            for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 20.0
        while not acked and time.monotonic() < deadline:
            time.sleep(0.02)
        assert acked, "no mutation was acknowledged before the drain"
        server.proc.send_signal(signal.SIGTERM)
        assert _wait_dead(server.proc, timeout=60.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=15.0)
        # Clean exit, drain messages in order.
        assert server.proc.returncode == 0, server.output()
        assert "draining on signal" in server.output()
        assert "drained; exiting" in server.output()
        # Every response the clients saw is a success, a clean retriable
        # refusal, or a connection-level refusal — nothing undefined.
        assert set(outcomes) <= {200, 503, "refused"}
        # Zero acknowledged requests lost: restart and check every acked
        # epoch is present, state bitwise equal to the reference replay.
        _verify_recovery(state_dir, sym, acked)

    def test_sigterm_with_fsync(self, state_dir, sym):
        server = _Server(state_dir, extra_args=("--fsync",))
        status, body = _post(
            server.url, "/graphs/g/edges", {"insert": [[1, 2]]}
        )
        assert status == 200 and body["durable"] is True
        server.proc.send_signal(signal.SIGTERM)
        assert _wait_dead(server.proc, timeout=30.0)
        assert server.proc.returncode == 0
        _verify_recovery(state_dir, sym, [body["epoch"]])
