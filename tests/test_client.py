"""ServeClient retry policy: deadlines, backoff, Retry-After, failover."""

from __future__ import annotations

import json
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ClientError
from repro.serve.client import ServeClient


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Replays a scripted list of (status, headers, body) responses."""

    def _serve(self) -> None:
        server = self.server
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            server.requests.append((self.command, self.path, body))
        else:
            server.requests.append((self.command, self.path, b""))
        with server.lock:
            if server.script:
                status, headers, payload = server.script.pop(0)
            else:
                status, headers, payload = 200, {}, b'{"ok": true}'
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args) -> None:  # noqa: A002
        pass


def _stub(script):
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = list(script)
    server.requests = []
    server.lock = threading.Lock()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    return server, url


@pytest.fixture()
def rng():
    return random.Random(0)


class TestRetries:
    def test_plain_success(self, rng):
        server, url = _stub([(200, {}, b'{"top": [[0, 0.0]]}')])
        client = ServeClient(url, rng=rng)
        assert client.query("g", "bfs", {"root": 0})["top"] == [[0, 0.0]]
        server.shutdown()

    def test_503_retries_and_honors_retry_after(self, rng):
        server, url = _stub(
            [
                (503, {"Retry-After": "0.05"}, b'{"error": "draining"}'),
                (503, {"Retry-After": "0.05"}, b'{"error": "draining"}'),
                (200, {}, b'{"cached": false}'),
            ]
        )
        client = ServeClient(url, timeout=5.0, retries=3, rng=rng)
        t0 = time.monotonic()
        result = client.query("g", "bfs", {"root": 0})
        result.pop("request_id")  # client-added correlation id
        assert result == {"cached": False}
        elapsed = time.monotonic() - t0
        assert len(server.requests) == 3
        assert elapsed >= 0.1  # two Retry-After pauses were respected
        server.shutdown()

    def test_4xx_raises_immediately_without_retry(self, rng):
        server, url = _stub([(400, {}, b'{"error": "bad root"}')])
        client = ServeClient(url, retries=5, rng=rng)
        with pytest.raises(ClientError, match="bad root"):
            client.query("g", "bfs", {"root": -1})
        assert len(server.requests) == 1
        server.shutdown()

    def test_retry_budget_exhausts(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "full"}')] * 4
        )
        client = ServeClient(url, retries=2, rng=rng)
        with pytest.raises(ClientError, match="after 3 attempt"):
            client.query("g", "bfs", {"root": 0})
        assert len(server.requests) == 3  # 1 + retries
        server.shutdown()

    def test_deadline_bounds_the_whole_call(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "30"}, b'{"error": "draining"}')] * 3
        )
        client = ServeClient(url, retries=5, rng=rng)
        t0 = time.monotonic()
        with pytest.raises(ClientError):
            client.query("g", "bfs", {"root": 0}, deadline=0.3)
        assert time.monotonic() - t0 < 5.0  # did not sleep the full 30 s
        server.shutdown()


class TestFailover:
    def test_read_fails_over_to_follower(self, rng):
        follower, furl = _stub([(200, {}, b'{"from": "follower"}')])
        # Leader URL points at a port nothing listens on.
        client = ServeClient(
            "http://127.0.0.1:9", [furl], timeout=2.0, retries=2, rng=rng
        )
        result = client.query("g", "bfs", {"root": 0})
        result.pop("request_id")
        assert result == {"from": "follower"}
        assert len(follower.requests) == 1
        follower.shutdown()

    def test_draining_leader_fails_over(self, rng):
        leader, lurl = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "draining"}')]
        )
        follower, furl = _stub([(200, {}, b'{"from": "follower"}')])
        client = ServeClient(lurl, [furl], retries=2, rng=rng)
        result = client.query("g", "bfs", {"root": 0})
        result.pop("request_id")
        assert result == {"from": "follower"}
        leader.shutdown()
        follower.shutdown()

    def test_mutations_never_go_to_followers(self, rng):
        leader, lurl = _stub(
            [
                (503, {"Retry-After": "0"}, b'{"error": "overloaded"}'),
                (200, {}, b'{"epoch": 1}'),
            ]
        )
        follower, furl = _stub([])
        client = ServeClient(lurl, [furl], retries=3, rng=rng)
        assert client.mutate("g", insert=[[0, 1]])["epoch"] == 1
        assert len(leader.requests) == 2
        assert follower.requests == []  # writes are leader-only
        leader.shutdown()
        follower.shutdown()

    def test_mutation_transport_failure_is_not_resent(self, rng):
        client = ServeClient(
            "http://127.0.0.1:9", timeout=1.0, retries=5, rng=rng
        )
        with pytest.raises(ClientError, match="may have been applied"):
            client.mutate("g", insert=[[0, 1]])

    def test_ready_probe(self, rng):
        server, url = _stub([(200, {}, b'{"status": "ready"}')])
        client = ServeClient(url, rng=rng)
        assert client.ready() is True
        assert client.ready("http://127.0.0.1:9") is False
        server.shutdown()


class TestBackoff:
    def test_full_jitter_is_bounded(self):
        client = ServeClient("http://x", rng=random.Random(42))
        for attempt in range(8):
            pause = client._backoff(attempt)
            assert 0.0 <= pause <= min(2.0, 0.1 * 2**attempt)


class TestDeadlineFailFast:
    def test_never_sleeps_into_a_known_miss(self, rng):
        """Retry-After far beyond the deadline: fail now, don't nap."""
        server, url = _stub(
            [(503, {"Retry-After": "30"}, b'{"error": "draining"}')] * 3
        )
        client = ServeClient(url, retries=5, rng=rng)
        t0 = time.monotonic()
        with pytest.raises(ClientError, match="failing fast"):
            client.query("g", "bfs", {"root": 0}, deadline=0.3)
        assert time.monotonic() - t0 < 0.3  # raised before the deadline
        assert len(server.requests) == 1
        server.shutdown()

    def test_504_is_retried_within_budget(self, rng):
        """A server-side deadline miss is retriable while the caller
        still has time (another replica may be less loaded)."""
        server, url = _stub(
            [
                (504, {"Retry-After": "0.01"}, b'{"error": "cancelled"}'),
                (200, {}, b'{"ok": true}'),
            ]
        )
        client = ServeClient(url, retries=2, rng=rng)
        result = client.query("g", "bfs", {"root": 0}, deadline=10.0)
        result.pop("request_id")
        assert result == {"ok": True}
        assert len(server.requests) == 2
        server.shutdown()

    def test_expired_deadline_raises_before_any_request(self, rng):
        server, url = _stub([])
        client = ServeClient(url, retries=2, rng=rng)
        client_deadline = 1e-9  # effectively already expired
        with pytest.raises(ClientError, match="deadline"):
            for _ in range(50):  # one of these lands past the deadline
                client.query("g", "bfs", {"root": 0}, deadline=client_deadline)
        server.shutdown()


class TestCircuitBreaker:
    def test_opens_after_threshold_and_skips_the_endpoint(self, rng):
        leader, lurl = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "sick"}')] * 10
        )
        follower, furl = _stub([])  # empty script = always 200
        client = ServeClient(
            lurl, [furl], retries=2, rng=rng, breaker_threshold=1,
            breaker_cooldown=60.0,
        )
        client.query("g", "bfs", {"root": 0})  # leader 503 -> follower
        client.query("g", "bfs", {"root": 0})  # leader skipped outright
        assert len(leader.requests) == 1, "open breaker still probed leader"
        assert len(follower.requests) == 2
        leader.shutdown()
        follower.shutdown()

    def test_half_open_trial_closes_on_success(self, rng):
        leader, lurl = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "sick"}')]
        )
        follower, furl = _stub([])
        client = ServeClient(
            lurl, [furl], retries=2, rng=rng, breaker_threshold=1,
            breaker_cooldown=0.05,
        )
        client.query("g", "bfs", {"root": 0})  # opens the leader breaker
        time.sleep(0.06)  # cooldown elapses; script exhausted -> 200 now
        client.query("g", "bfs", {"root": 0})  # half-open trial succeeds
        client.query("g", "bfs", {"root": 0})  # breaker closed again
        assert len(leader.requests) == 3
        leader.shutdown()
        follower.shutdown()

    def test_all_breakers_open_fails_immediately(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "sick"}')] * 10
        )
        client = ServeClient(
            url, retries=5, rng=rng, breaker_threshold=1,
            breaker_cooldown=60.0,
        )
        with pytest.raises(ClientError, match="circuit breaker"):
            client.query("g", "bfs", {"root": 0})
        assert len(server.requests) == 1  # opened on the first refusal
        server.shutdown()

    def test_4xx_counts_as_breaker_success(self, rng):
        """A malformed request proves the endpoint is healthy — it must
        not open the breaker for everyone else."""
        server, url = _stub(
            [(400, {}, b'{"error": "bad root"}')] * 3
        )
        client = ServeClient(
            url, retries=2, rng=rng, breaker_threshold=1,
        )
        for _ in range(3):
            with pytest.raises(ClientError, match="bad root"):
                client.query("g", "bfs", {"root": -1})
        assert len(server.requests) == 3  # never skipped
        server.shutdown()

    def test_ready_bypasses_an_open_breaker(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "sick"}')]
        )
        client = ServeClient(
            url, retries=1, rng=rng, breaker_threshold=1,
            breaker_cooldown=60.0,
        )
        with pytest.raises(ClientError):
            client.query("g", "bfs", {"root": 0})
        # The breaker is open, but probes exist to detect recovery.
        assert client.ready() is True  # script exhausted -> 200
        server.shutdown()


class _HeaderRecordingHandler(_ScriptedHandler):
    def _serve(self) -> None:
        self.server.seen_headers.append(dict(self.headers))
        _ScriptedHandler._serve(self)

    do_GET = _serve
    do_POST = _serve


class TestGovernanceHeaders:
    def _stub(self):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _HeaderRecordingHandler)
        server.script = []
        server.requests = []
        server.seen_headers = []
        server.lock = threading.Lock()
        threading.Thread(target=server.serve_forever, daemon=True).start()
        return server, "http://%s:%s" % server.server_address[:2]

    def test_tenant_and_deadline_headers_are_sent(self, rng):
        server, url = self._stub()
        client = ServeClient(url, rng=rng, tenant="acme")
        client.query("g", "bfs", {"root": 0}, deadline=5.0)
        (headers,) = server.seen_headers
        assert headers["X-Tenant"] == "acme"
        # Remaining budget, not the original: <= 5000 ms and positive.
        assert 0 < float(headers["X-Deadline-Ms"]) <= 5000
        server.shutdown()

    def test_per_call_tenant_overrides_client_default(self, rng):
        server, url = self._stub()
        client = ServeClient(url, rng=rng, tenant="acme")
        client.query("g", "bfs", {"root": 0}, tenant="umbrella")
        client.query("g", "bfs", {"root": 0})
        first, second = server.seen_headers
        assert first["X-Tenant"] == "umbrella"
        assert second["X-Tenant"] == "acme"
        assert "X-Deadline-Ms" not in first  # no deadline, no header
        server.shutdown()


class TestRequestIdPropagation:
    def _stub(self, script):
        server = ThreadingHTTPServer(("127.0.0.1", 0), _HeaderRecordingHandler)
        server.script = list(script)
        server.requests = []
        server.seen_headers = []
        server.lock = threading.Lock()
        threading.Thread(target=server.serve_forever, daemon=True).start()
        return server, "http://%s:%s" % server.server_address[:2]

    def test_same_id_rides_every_retry_attempt(self, rng):
        server, url = self._stub(
            [
                (503, {"Retry-After": "0"}, b'{"error": "draining"}'),
                (503, {"Retry-After": "0"}, b'{"error": "draining"}'),
                (200, {}, b'{"cached": false}'),
            ]
        )
        client = ServeClient(url, retries=3, rng=rng)
        result = client.query("g", "bfs", {"root": 0})
        ids = [h["X-Request-Id"] for h in server.seen_headers]
        assert len(ids) == 3
        assert len(set(ids)) == 1, (
            f"retry attempts must reuse one request id, saw {ids}"
        )
        # The id is surfaced on the result for client-side correlation.
        assert result["request_id"] == ids[0]
        server.shutdown()

    def test_explicit_id_is_forwarded_verbatim(self, rng):
        server, url = self._stub([(200, {}, b'{"ok": true}')])
        client = ServeClient(url, rng=rng)
        result = client.query(
            "g", "bfs", {"root": 0}, request_id="caller-chose-this"
        )
        (headers,) = server.seen_headers
        assert headers["X-Request-Id"] == "caller-chose-this"
        assert result["request_id"] == "caller-chose-this"
        server.shutdown()

    def test_malformed_explicit_id_is_replaced(self, rng):
        server, url = self._stub([(200, {}, b'{"ok": true}')])
        client = ServeClient(url, rng=rng)
        client.query("g", "bfs", {"root": 0}, request_id="bad id !!")
        (headers,) = server.seen_headers
        assert headers["X-Request-Id"] != "bad id !!"
        assert len(headers["X-Request-Id"]) == 32
        server.shutdown()

    def test_server_supplied_request_id_wins_on_response(self, rng):
        # When the server echoes (or rewrites) the id in the body, the
        # client must not clobber it — setdefault semantics.
        server, url = self._stub(
            [(200, {}, b'{"ok": true, "request_id": "server-id"}')]
        )
        client = ServeClient(url, rng=rng)
        result = client.query("g", "bfs", {"root": 0})
        assert result["request_id"] == "server-id"
        server.shutdown()

    def test_raised_client_error_carries_the_id(self, rng):
        server, url = self._stub([(400, {}, b'{"error": "bad root"}')])
        client = ServeClient(url, rng=rng)
        with pytest.raises(ClientError) as excinfo:
            client.query("g", "bfs", {"root": -1}, request_id="fail-id-1")
        assert excinfo.value.request_id == "fail-id-1"
        server.shutdown()

    def test_exhausted_retries_error_carries_the_id(self, rng):
        server, url = self._stub(
            [(503, {"Retry-After": "0"}, b'{"error": "full"}')] * 3
        )
        client = ServeClient(url, retries=1, rng=rng)
        with pytest.raises(ClientError) as excinfo:
            client.query("g", "bfs", {"root": 0})
        assert excinfo.value.request_id is not None
        ids = {h["X-Request-Id"] for h in server.seen_headers}
        assert ids == {excinfo.value.request_id}
        server.shutdown()

    def test_mutation_carries_the_id_too(self, rng):
        server, url = self._stub([(200, {}, b'{"applied": 1}')])
        client = ServeClient(url, rng=rng)
        result = client.mutate(
            "g", insert=[[0, 1]], request_id="mut-id-9"
        )
        (headers,) = server.seen_headers
        assert headers["X-Request-Id"] == "mut-id-9"
        assert result["request_id"] == "mut-id-9"
        server.shutdown()
