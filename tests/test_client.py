"""ServeClient retry policy: deadlines, backoff, Retry-After, failover."""

from __future__ import annotations

import json
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ClientError
from repro.serve.client import ServeClient


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Replays a scripted list of (status, headers, body) responses."""

    def _serve(self) -> None:
        server = self.server
        if self.command == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            server.requests.append((self.command, self.path, body))
        else:
            server.requests.append((self.command, self.path, b""))
        with server.lock:
            if server.script:
                status, headers, payload = server.script.pop(0)
            else:
                status, headers, payload = 200, {}, b'{"ok": true}'
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args) -> None:  # noqa: A002
        pass


def _stub(script):
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = list(script)
    server.requests = []
    server.lock = threading.Lock()
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    return server, url


@pytest.fixture()
def rng():
    return random.Random(0)


class TestRetries:
    def test_plain_success(self, rng):
        server, url = _stub([(200, {}, b'{"top": [[0, 0.0]]}')])
        client = ServeClient(url, rng=rng)
        assert client.query("g", "bfs", {"root": 0})["top"] == [[0, 0.0]]
        server.shutdown()

    def test_503_retries_and_honors_retry_after(self, rng):
        server, url = _stub(
            [
                (503, {"Retry-After": "0.05"}, b'{"error": "draining"}'),
                (503, {"Retry-After": "0.05"}, b'{"error": "draining"}'),
                (200, {}, b'{"cached": false}'),
            ]
        )
        client = ServeClient(url, timeout=5.0, retries=3, rng=rng)
        t0 = time.monotonic()
        assert client.query("g", "bfs", {"root": 0}) == {"cached": False}
        elapsed = time.monotonic() - t0
        assert len(server.requests) == 3
        assert elapsed >= 0.1  # two Retry-After pauses were respected
        server.shutdown()

    def test_4xx_raises_immediately_without_retry(self, rng):
        server, url = _stub([(400, {}, b'{"error": "bad root"}')])
        client = ServeClient(url, retries=5, rng=rng)
        with pytest.raises(ClientError, match="bad root"):
            client.query("g", "bfs", {"root": -1})
        assert len(server.requests) == 1
        server.shutdown()

    def test_retry_budget_exhausts(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "full"}')] * 4
        )
        client = ServeClient(url, retries=2, rng=rng)
        with pytest.raises(ClientError, match="after 3 attempt"):
            client.query("g", "bfs", {"root": 0})
        assert len(server.requests) == 3  # 1 + retries
        server.shutdown()

    def test_deadline_bounds_the_whole_call(self, rng):
        server, url = _stub(
            [(503, {"Retry-After": "30"}, b'{"error": "draining"}')] * 3
        )
        client = ServeClient(url, retries=5, rng=rng)
        t0 = time.monotonic()
        with pytest.raises(ClientError):
            client.query("g", "bfs", {"root": 0}, deadline=0.3)
        assert time.monotonic() - t0 < 5.0  # did not sleep the full 30 s
        server.shutdown()


class TestFailover:
    def test_read_fails_over_to_follower(self, rng):
        follower, furl = _stub([(200, {}, b'{"from": "follower"}')])
        # Leader URL points at a port nothing listens on.
        client = ServeClient(
            "http://127.0.0.1:9", [furl], timeout=2.0, retries=2, rng=rng
        )
        assert client.query("g", "bfs", {"root": 0}) == {"from": "follower"}
        assert len(follower.requests) == 1
        follower.shutdown()

    def test_draining_leader_fails_over(self, rng):
        leader, lurl = _stub(
            [(503, {"Retry-After": "0"}, b'{"error": "draining"}')]
        )
        follower, furl = _stub([(200, {}, b'{"from": "follower"}')])
        client = ServeClient(lurl, [furl], retries=2, rng=rng)
        assert client.query("g", "bfs", {"root": 0}) == {"from": "follower"}
        leader.shutdown()
        follower.shutdown()

    def test_mutations_never_go_to_followers(self, rng):
        leader, lurl = _stub(
            [
                (503, {"Retry-After": "0"}, b'{"error": "overloaded"}'),
                (200, {}, b'{"epoch": 1}'),
            ]
        )
        follower, furl = _stub([])
        client = ServeClient(lurl, [furl], retries=3, rng=rng)
        assert client.mutate("g", insert=[[0, 1]])["epoch"] == 1
        assert len(leader.requests) == 2
        assert follower.requests == []  # writes are leader-only
        leader.shutdown()
        follower.shutdown()

    def test_mutation_transport_failure_is_not_resent(self, rng):
        client = ServeClient(
            "http://127.0.0.1:9", timeout=1.0, retries=5, rng=rng
        )
        with pytest.raises(ClientError, match="may have been applied"):
            client.mutate("g", insert=[[0, 1]])

    def test_ready_probe(self, rng):
        server, url = _stub([(200, {}, b'{"status": "ready"}')])
        client = ServeClient(url, rng=rng)
        assert client.ready() is True
        assert client.ready("http://127.0.0.1:9") is False
        server.shutdown()


class TestBackoff:
    def test_full_jitter_is_bounded(self):
        client = ServeClient("http://x", rng=random.Random(42))
        for attempt in range(8):
            pause = client._backoff(attempt)
            assert 0.0 <= pause <= min(2.0, 0.1 * 2**attempt)
