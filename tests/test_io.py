"""Graph I/O tests: MatrixMarket and edge-list round trips and error cases."""

import gzip

import numpy as np
import pytest

from repro.errors import IOFormatError
from repro.graph.builder import build_graph
from repro.graph.io import read_edge_list, read_mtx, write_edge_list, write_mtx
from repro.matrix.ops import matrices_equal


@pytest.fixture
def weighted_graph():
    return build_graph([(0, 1, 2.5), (1, 2, 0.125), (2, 0, 9.0)])


class TestMTXRoundTrip:
    def test_real_roundtrip(self, tmp_path, weighted_graph):
        path = tmp_path / "g.mtx"
        write_mtx(weighted_graph, path)
        back = read_mtx(path)
        assert matrices_equal(back.edges, weighted_graph.edges)

    def test_integer_roundtrip(self, tmp_path):
        g = build_graph([(0, 1, 3), (1, 2, 4)])
        path = tmp_path / "g.mtx"
        write_mtx(g, path, field="integer")
        back = read_mtx(path)
        assert back.edges.vals.tolist() == [3, 4]

    def test_pattern_roundtrip(self, tmp_path):
        g = build_graph([(0, 1), (1, 0)])
        path = tmp_path / "g.mtx"
        write_mtx(g, path, field="pattern")
        back = read_mtx(path)
        assert back.n_edges == 2
        assert back.edges.vals.tolist() == [1.0, 1.0]

    def test_bad_field_rejected(self, tmp_path, weighted_graph):
        with pytest.raises(IOFormatError):
            write_mtx(weighted_graph, tmp_path / "g.mtx", field="complex")


class TestMTXParsing:
    def write(self, tmp_path, content):
        path = tmp_path / "in.mtx"
        path.write_text(content, encoding="utf-8")
        return path

    def test_symmetric_expansion(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 1.0\n",
        )
        g = read_mtx(path)
        # Off-diagonal entry mirrored; diagonal entry not duplicated.
        assert g.n_edges == 3

    def test_comments_and_blank_lines(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment\n"
            "\n"
            "2 2 1\n"
            "% another\n"
            "1 2 4.0\n",
        )
        g = read_mtx(path)
        assert g.n_edges == 1
        assert g.edges.vals.tolist() == [4.0]

    def test_one_based_conversion(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n2 1 1.0\n",
        )
        g = read_mtx(path)
        assert g.edges.rows.tolist() == [1]
        assert g.edges.cols.tolist() == [0]

    def test_missing_header(self, tmp_path):
        path = self.write(tmp_path, "2 2 1\n1 2 1.0\n")
        with pytest.raises(IOFormatError, match="header"):
            read_mtx(path)

    def test_bad_object_kind(self, tmp_path):
        path = self.write(
            tmp_path, "%%MatrixMarket vector coordinate real general\n"
        )
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_unsupported_field(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate complex general\n2 2 0\n",
        )
        with pytest.raises(IOFormatError, match="field"):
            read_mtx(path)

    def test_non_square_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 3 0\n",
        )
        with pytest.raises(IOFormatError, match="square"):
            read_mtx(path)

    def test_nnz_mismatch(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n",
        )
        with pytest.raises(IOFormatError, match="nnz"):
            read_mtx(path)

    def test_too_many_entries(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n1 2 1.0\n2 1 1.0\n",
        )
        with pytest.raises(IOFormatError):
            read_mtx(path)

    def test_pattern_entry_with_value_rejected(self, tmp_path):
        path = self.write(
            tmp_path,
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 2 1\n1 2 1.0\n",
        )
        with pytest.raises(IOFormatError):
            read_mtx(path)


class TestEdgeList:
    def test_roundtrip_weighted(self, tmp_path, weighted_graph):
        path = tmp_path / "edges.tsv"
        write_edge_list(weighted_graph, path, weighted=True)
        back = read_edge_list(path, weighted=True)
        assert matrices_equal(back.edges, weighted_graph.edges)

    def test_roundtrip_unweighted(self, tmp_path):
        g = build_graph([(0, 1), (2, 3)])
        path = tmp_path / "edges.tsv"
        write_edge_list(g, path, weighted=False)
        back = read_edge_list(path)
        assert back.n_edges == 2

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# header\n0 1\n\n2 3\n", encoding="utf-8")
        assert read_edge_list(path).n_edges == 2

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0 1\n2\n", encoding="utf-8")
        with pytest.raises(IOFormatError):
            read_edge_list(path)

    def test_explicit_vertex_count(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0 1\n", encoding="utf-8")
        assert read_edge_list(path, n_vertices=10).n_vertices == 10

    def test_weighted_requires_third_column(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(IOFormatError):
            read_edge_list(path, weighted=True)


class TestGzipTransparency:
    def test_edge_list_gz_suffix(self, tmp_path, weighted_graph):
        plain = tmp_path / "edges.tsv"
        write_edge_list(weighted_graph, plain, weighted=True)
        compressed = tmp_path / "edges.tsv.gz"
        with gzip.open(compressed, "wt", encoding="utf-8") as handle:
            handle.write(plain.read_text())
        back = read_edge_list(compressed, weighted=True)
        assert matrices_equal(back.edges, weighted_graph.edges)

    def test_mtx_gz_suffix(self, tmp_path, weighted_graph):
        plain = tmp_path / "g.mtx"
        write_mtx(weighted_graph, plain)
        compressed = tmp_path / "g.mtx.gz"
        with gzip.open(compressed, "wt", encoding="utf-8") as handle:
            handle.write(plain.read_text())
        back = read_mtx(compressed)
        assert matrices_equal(back.edges, weighted_graph.edges)

    def test_gzip_magic_without_suffix(self, tmp_path):
        """A gzipped file with a plain name still reads (magic sniff)."""
        path = tmp_path / "edges.tsv"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("0 1\n1 2\n")
        assert read_edge_list(path).n_edges == 2

    def test_plain_text_still_reads(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("0 1\n", encoding="utf-8")
        assert read_edge_list(path).n_edges == 1


def test_mtx_survives_rmat(tmp_path, rmat_small):
    """Generator output round-trips exactly through the mtx format."""
    path = tmp_path / "rmat.mtx"
    write_mtx(rmat_small, path, field="integer")
    back = read_mtx(path)
    assert back.n_vertices == rmat_small.n_vertices
    assert matrices_equal(back.edges, rmat_small.edges)
