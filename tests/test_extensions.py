"""Tests for the extension algorithms and the dense property substrate."""

import numpy as np
import pytest

from repro.algorithms.label_propagation import run_label_propagation
from repro.core.options import EngineOptions
from repro.errors import (
    BenchmarkError,
    ConvergenceError,
    DatasetError,
    FormatError,
    GraphError,
    IOFormatError,
    ProgramError,
    ReproError,
    ShapeError,
)
from repro.graph.builder import build_graph
from repro.graph.generators import gnm_random_graph, path_graph, rmat_graph
from repro.graph.preprocess import symmetrize
from repro.vector.dense import PropertyArray
from repro.vector.sparse_vector import OBJECT, ValueSpec


class TestLabelPropagation:
    def test_single_seed_is_bfs(self):
        graph = symmetrize(path_graph(5))
        result = run_label_propagation(graph, {0: 0})
        assert result.labels.tolist() == [0, 0, 0, 0, 0]
        assert result.distances.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_two_seeds_partition_a_path(self):
        graph = symmetrize(path_graph(7))
        result = run_label_propagation(graph, {0: 1, 6: 2})
        # Vertices 0-3 nearer seed 0 (tie at 3 goes to smaller label).
        assert result.labels.tolist() == [1, 1, 1, 1, 2, 2, 2]

    def test_tie_breaks_by_smaller_label(self):
        graph = build_graph([(0, 1), (2, 1)], symmetrize=True)
        result = run_label_propagation(graph, {0: 2, 2: 1})
        assert result.labels[1] == 1  # equidistant; lower label wins

    def test_unreached_marked(self):
        graph = path_graph(4)  # directed: nothing reaches vertex 0
        result = run_label_propagation(graph, {1: 0})
        assert result.labels[0] == -1
        assert np.isinf(result.distances[0])
        assert result.reached == 3

    def test_matches_multisource_bfs_reference(self):
        graph = symmetrize(gnm_random_graph(60, 240, seed=4))
        seeds = {3: 1, 40: 0, 17: 2}
        result = run_label_propagation(graph, seeds)
        # Reference: per-seed BFS, lexicographic (distance, label) min.
        from repro.algorithms import run_bfs

        per_seed = {}
        for v, label in seeds.items():
            g2 = symmetrize(gnm_random_graph(60, 240, seed=4))
            per_seed[label] = run_bfs(g2, v).distances
        for u in range(graph.n_vertices):
            candidates = sorted(
                (per_seed[label][u], label) for label in per_seed
            )
            best_dist, best_label = candidates[0]
            if np.isinf(best_dist):
                assert result.labels[u] == -1
            else:
                assert result.labels[u] == best_label
                assert result.distances[u] == best_dist

    def test_paths_agree(self):
        graph = symmetrize(rmat_graph(7, 6, seed=2))
        seeds = {1: 0, 5: 1}
        fused = run_label_propagation(graph, dict(seeds)).labels
        graph2 = symmetrize(rmat_graph(7, 6, seed=2))
        scalar = run_label_propagation(
            graph2, dict(seeds), options=EngineOptions(fused=False)
        ).labels
        assert np.array_equal(fused, scalar)

    def test_validation(self):
        graph = symmetrize(path_graph(4))
        with pytest.raises(GraphError):
            run_label_propagation(graph, {})
        with pytest.raises(GraphError):
            run_label_propagation(graph, {99: 0})
        with pytest.raises(GraphError):
            run_label_propagation(graph, {0: 99})


class TestPropertyArray:
    def test_fill_and_get(self):
        props = PropertyArray(4)
        props.fill(2.5)
        assert props.get(3) == 2.5
        assert len(props) == 4

    def test_set(self):
        props = PropertyArray(4)
        props.set(1, 9.0)
        assert props.get(1) == 9.0

    def test_vector_entries(self):
        props = PropertyArray(3, ValueSpec(np.float64, (2,)))
        props.set(0, np.array([1.0, 2.0]))
        assert np.array_equal(props.get(0), [1.0, 2.0])

    def test_object_entries(self):
        props = PropertyArray(3, OBJECT)
        props.set(0, [1, 2, 3])
        assert props.get(0) == [1, 2, 3]

    def test_entries_equal_scalar(self):
        props = PropertyArray(2)
        props.set(0, 1.0)
        assert props.entries_equal(0, 1.0)
        assert not props.entries_equal(0, 2.0)

    def test_entries_equal_object(self):
        props = PropertyArray(2, OBJECT)
        arr = np.array([1, 2])
        props.set(0, arr)
        assert props.entries_equal(0, arr)
        assert props.entries_equal(0, np.array([1, 2]))
        assert not props.entries_equal(0, np.array([1, 3]))

    def test_copy_independent(self):
        props = PropertyArray(2)
        props.set(0, 1.0)
        clone = props.copy()
        clone.set(0, 9.0)
        assert props.get(0) == 1.0

    def test_from_array(self):
        data = np.zeros((3, 2))
        props = PropertyArray.from_array(data)
        assert props.length == 3
        assert props.spec.shape == (2,)
        props.set(1, [5.0, 6.0])
        assert data[1].tolist() == [5.0, 6.0]  # wraps, doesn't copy

    def test_from_array_spec_mismatch(self):
        with pytest.raises(ShapeError):
            PropertyArray.from_array(
                np.zeros((3, 2)), ValueSpec(np.float64, (4,))
            )

    def test_negative_length(self):
        with pytest.raises(ShapeError):
            PropertyArray(-1)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ShapeError,
            FormatError,
            GraphError,
            ProgramError,
            ConvergenceError,
            DatasetError,
            IOFormatError,
            BenchmarkError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        """Validation errors should also be catchable as ValueError."""
        for exc in (ShapeError, FormatError, GraphError, DatasetError, IOFormatError):
            assert issubclass(exc, ValueError)

    def test_convergence_is_runtime_error(self):
        assert issubclass(ConvergenceError, RuntimeError)
