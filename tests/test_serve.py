"""repro.serve: registry, cache, scheduler policy, service correctness.

The serving layer's contract is that batching and caching are invisible:
every response is bitwise identical to a sequential run of the same
query.  Scheduler policy (full-batch fast path, timeout partial batches,
queue-full shedding, never co-batching different groups) is tested
against a stub executor with controllable timing; the service tests then
drive the real engine end to end.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.algorithms.adapters import QUERY_ADAPTERS, get_adapter
from repro.algorithms.bfs import run_bfs
from repro.algorithms.pagerank import run_personalized_pagerank
from repro.algorithms.sssp import run_sssp
from repro.errors import (
    BadQueryError,
    DeadlineExceededError,
    QuotaExceededError,
    ServeError,
    ServiceOverloadedError,
    UnknownGraphError,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize, with_random_weights
from repro.serve import (
    BatchPolicy,
    GraphRegistry,
    GraphService,
    MicroBatcher,
    ResultCache,
    Ticket,
)
from repro.store.snapshot import save_snapshot

# Generous dispatch window for tests asserting coalescing (the batch
# must form while we enqueue), tiny one for tests asserting timeouts.
LONG_WAIT_MS = 2_000.0
SHORT_WAIT_MS = 20.0


@pytest.fixture(scope="module")
def rmat():
    return with_random_weights(rmat_graph(scale=8, edge_factor=8, seed=5), seed=6)


@pytest.fixture(scope="module")
def rmat_sym(rmat):
    return symmetrize(rmat)


@pytest.fixture()
def registry(rmat, rmat_sym):
    registry = GraphRegistry()
    registry.add_graph("dir", rmat)
    registry.add_graph("sym", rmat_sym)
    return registry


# ----------------------------------------------------------------------
# GraphRegistry
# ----------------------------------------------------------------------
class TestGraphRegistry:
    def test_snapshot_graphs_are_mmap_backed(self, tmp_path, rmat_sym):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_sym, path)
        registry = GraphRegistry()
        entry = registry.add_snapshot("social", path)
        assert entry.graph.snapshot_path is not None
        assert entry.graph.n_edges == rmat_sym.n_edges
        assert registry.get("social") is entry.graph
        assert "social" in registry and len(registry) == 1
        description = registry.describe()[0]
        assert description["name"] == "social"
        assert description["mmap"] is True
        json.dumps(registry.describe())

    def test_unknown_and_duplicate_names(self, registry, rmat):
        with pytest.raises(UnknownGraphError):
            registry.get("missing")
        with pytest.raises(ServeError):
            registry.add_graph("dir", rmat)
        registry.remove("dir")
        assert "dir" not in registry
        with pytest.raises(UnknownGraphError):
            registry.remove("dir")

    def test_content_key_memoized_and_content_addressed(self, registry):
        entry = registry.entry("dir")
        assert entry.content_key() == entry.content_key()
        assert entry.content_key() != registry.entry("sym").content_key()


# ----------------------------------------------------------------------
# ResultCache
# ----------------------------------------------------------------------
class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least-recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = ResultCache(capacity=8, ttl_seconds=10.0, clock=lambda: now[0])
        cache.put("k", "v")
        now[0] = 9.0
        assert cache.get("k") == "v"
        now[0] = 21.0
        assert cache.get("k") is None
        assert cache.stats()["expirations"] == 1

    def test_zero_capacity_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0 and not cache.enabled

    def test_stats_are_json_ready(self):
        cache = ResultCache(capacity=2)
        cache.get("miss")
        cache.put("k", 1)
        cache.get("k")
        stats = json.loads(json.dumps(cache.stats()))
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


# ----------------------------------------------------------------------
# MicroBatcher policy (stub executor — no engine involved)
# ----------------------------------------------------------------------
class _StubExecutor:
    """Records batches; resolves every ticket with its group + batch size."""

    def __init__(self, block: threading.Event | None = None):
        self.batches: list[tuple[object, int]] = []
        self._block = block
        self._lock = threading.Lock()

    def __call__(self, group, tickets):
        if self._block is not None:
            self._block.wait(timeout=30)
        with self._lock:
            self.batches.append((group, len(tickets)))
        for ticket in tickets:
            ticket.future.set_result((group, len(tickets)))


class TestMicroBatcher:
    def test_full_batch_fast_path(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=4, max_wait_ms=LONG_WAIT_MS)
        ) as batcher:
            t0 = time.perf_counter()
            futures = [
                batcher.submit(Ticket(group="g", payload=i)) for i in range(4)
            ]
            results = [f.result(timeout=10) for f in futures]
            elapsed = time.perf_counter() - t0
        # Dispatched on reaching K, long before the 2 s window.
        assert elapsed < 1.0
        assert results == [("g", 4)] * 4
        stats = batcher.stats()
        assert stats["dispatches"] == 1
        assert stats["full_dispatches"] == 1
        assert stats["timeout_dispatches"] == 0
        assert stats["mean_batch_k"] == 4.0

    def test_timeout_dispatches_partial_batch(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=8, max_wait_ms=SHORT_WAIT_MS)
        ) as batcher:
            futures = [
                batcher.submit(Ticket(group="g", payload=i)) for i in range(3)
            ]
            results = [f.result(timeout=10) for f in futures]
        assert results == [("g", 3)] * 3
        stats = batcher.stats()
        assert stats["dispatches"] == 1
        assert stats["timeout_dispatches"] == 1
        assert stats["full_dispatches"] == 0

    def test_single_request_dispatches_as_k1(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=8, max_wait_ms=SHORT_WAIT_MS)
        ) as batcher:
            future = batcher.submit(Ticket(group="g", payload=0))
            assert future.result(timeout=10) == ("g", 1)

    def test_different_groups_never_co_batched(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=8, max_wait_ms=SHORT_WAIT_MS)
        ) as batcher:
            futures = [
                batcher.submit(Ticket(group=("g", kind), payload=i))
                for i in range(6)
                for kind in ("bfs", "ppr")
            ]
            for future in futures:
                future.result(timeout=10)
        # Two homogeneous batches — groups were queued simultaneously
        # but never mixed into one dispatch.
        assert sorted(executor.batches) == [(("g", "bfs"), 6), (("g", "ppr"), 6)]

    def test_queue_full_sheds(self):
        gate = threading.Event()
        executor = _StubExecutor(block=gate)
        batcher = MicroBatcher(
            executor, BatchPolicy(max_batch_k=1, max_wait_ms=0.0, max_queue=2)
        )
        try:
            # First ticket dispatches immediately and blocks the
            # dispatcher on the gate; two more fill the queue.
            first = batcher.submit(Ticket(group="g", payload=0))
            deadline = time.time() + 10
            while batcher.pending and time.time() < deadline:
                time.sleep(0.001)  # wait for the dispatcher to take it
            queued = [
                batcher.submit(Ticket(group="g", payload=i)) for i in (1, 2)
            ]
            with pytest.raises(ServiceOverloadedError):
                batcher.submit(Ticket(group="g", payload=3))
            assert batcher.stats()["shed"] == 1
            gate.set()
            assert first.result(timeout=10) == ("g", 1)
            for future in queued:
                assert future.result(timeout=10) == ("g", 1)
        finally:
            gate.set()
            batcher.close()

    def test_oversize_burst_splits_into_max_k_batches(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=4, max_wait_ms=SHORT_WAIT_MS)
        ) as batcher:
            futures = [
                batcher.submit(Ticket(group="g", payload=i)) for i in range(10)
            ]
            sizes = sorted(f.result(timeout=10)[1] for f in futures)
        assert max(sizes) <= 4
        assert sum(size for _, size in executor.batches) == 10

    def test_overdue_group_beats_saturated_full_queues(self):
        """A timed-out lone request dispatches before a hot group's full
        queues: full-batch priority must not starve the dispatch-window
        contract of colder groups."""
        gate = threading.Event()

        class _GatedExecutor(_StubExecutor):
            def __call__(self, group, tickets):
                released = gate.wait(timeout=30)
                assert released
                _StubExecutor.__call__(self, group, tickets)

        executor = _GatedExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=2, max_wait_ms=30.0)
        ) as batcher:
            # Two gate tickets = a full batch, dispatched immediately;
            # the executor then blocks the dispatcher on the gate.
            pending = [
                batcher.submit(Ticket(group="gate", payload=i))
                for i in range(2)
            ]
            deadline = time.time() + 10
            while batcher.pending and time.time() < deadline:
                time.sleep(0.001)
            # While blocked: one lone request, then (past its window)
            # enough hot tickets for two full batches.
            pending.append(batcher.submit(Ticket(group="lone", payload=0)))
            time.sleep(0.06)  # lone is now past max_wait_ms
            pending += [
                batcher.submit(Ticket(group="hot", payload=i))
                for i in range(4)
            ]
            gate.set()
            for future in pending:
                future.result(timeout=10)
        groups = [group for group, _ in executor.batches]
        assert groups[0] == "gate"
        assert groups[1] == "lone", (
            f"overdue lone request starved by full hot queues: {groups}"
        )
        assert groups[2:] == ["hot", "hot"]

    def test_executor_failure_propagates_to_all_lanes(self):
        def boom(group, tickets):
            raise RuntimeError("engine exploded")

        with MicroBatcher(
            boom, BatchPolicy(max_batch_k=4, max_wait_ms=SHORT_WAIT_MS)
        ) as batcher:
            futures = [
                batcher.submit(Ticket(group="g", payload=i)) for i in range(4)
            ]
            for future in futures:
                with pytest.raises(RuntimeError, match="engine exploded"):
                    future.result(timeout=10)

    def test_close_drains_queued_tickets(self):
        executor = _StubExecutor()
        batcher = MicroBatcher(
            executor, BatchPolicy(max_batch_k=8, max_wait_ms=LONG_WAIT_MS)
        )
        futures = [
            batcher.submit(Ticket(group="g", payload=i)) for i in range(3)
        ]
        batcher.close()  # drains instead of waiting out the 2 s window
        assert [f.result(timeout=0)[1] for f in futures] == [3, 3, 3]
        with pytest.raises(ServeError):
            batcher.submit(Ticket(group="g", payload=9))

    def test_policy_validation(self):
        with pytest.raises(ServeError):
            BatchPolicy(max_batch_k=0)
        with pytest.raises(ServeError):
            BatchPolicy(max_wait_ms=-1)
        with pytest.raises(ServeError):
            BatchPolicy(max_queue=0)


# ----------------------------------------------------------------------
# Query adapters
# ----------------------------------------------------------------------
class TestAdapters:
    def test_known_kinds(self):
        assert set(QUERY_ADAPTERS) == {"bfs", "sssp", "ppr"}
        with pytest.raises(BadQueryError):
            get_adapter("pagerank-classic")

    def test_canonicalization_validates(self, rmat):
        bfs = get_adapter("bfs")
        assert bfs.canonicalize(rmat, {"root": "3"}) == {"root": 3}
        with pytest.raises(BadQueryError):
            bfs.canonicalize(rmat, {})
        with pytest.raises(BadQueryError):
            bfs.canonicalize(rmat, {"root": rmat.n_vertices})
        with pytest.raises(BadQueryError):
            bfs.canonicalize(rmat, {"root": 0, "depth": 3})

    def test_ppr_defaults_and_batch_key(self, rmat):
        ppr = get_adapter("ppr")
        canonical = ppr.canonicalize(rmat, {"source": 1})
        assert canonical == {"source": 1, "r": 0.15, "iterations": 30}
        other = ppr.canonicalize(rmat, {"source": 2, "r": 0.5})
        # Shared-sweep parameters differ -> may never share a batch.
        assert ppr.batch_key(canonical) != ppr.batch_key(other)
        assert ppr.batch_key(canonical) == ppr.batch_key(
            ppr.canonicalize(rmat, {"source": 9})
        )
        with pytest.raises(BadQueryError):
            ppr.canonicalize(rmat, {"source": 1, "r": 1.5})
        with pytest.raises(BadQueryError):
            ppr.canonicalize(rmat, {"source": 1, "iterations": 0})


# ----------------------------------------------------------------------
# GraphService end to end (real engine)
# ----------------------------------------------------------------------
def _service(registry, **kwargs):
    kwargs.setdefault(
        "policy", BatchPolicy(max_batch_k=8, max_wait_ms=SHORT_WAIT_MS)
    )
    return GraphService(registry, **kwargs)


class TestGraphService:
    def test_concurrent_queries_batch_and_match_sequential(
        self, registry, rmat_sym
    ):
        roots = [int(v) for v in np.argsort(rmat_sym.out_degrees())[-8:]]
        with _service(registry) as service, ThreadPoolExecutor(8) as pool:
            results = list(
                pool.map(
                    lambda r: service.query("sym", "bfs", {"root": r}), roots
                )
            )
            stats = service.stats()
        for root, result in zip(roots, results):
            assert np.array_equal(result.values, run_bfs(rmat_sym, root).distances)
            assert not result.cached
            assert result.batch_k >= 1
        # Concurrent same-kind queries actually coalesced.
        assert stats["scheduler"]["mean_batch_k"] > 1.0
        assert stats["queries"] == len(roots)

    def test_each_kind_matches_its_sequential_reference(
        self, registry, rmat, rmat_sym
    ):
        with _service(registry) as service:
            bfs = service.query("sym", "bfs", {"root": 3})
            sssp = service.query("sym", "sssp", {"source": 3})
            ppr = service.query(
                "dir", "ppr", {"source": 3, "iterations": 5}
            )
        assert np.array_equal(bfs.values, run_bfs(rmat_sym, 3).distances)
        assert np.array_equal(sssp.values, run_sssp(rmat_sym, 3).distances)
        assert np.array_equal(
            ppr.values,
            run_personalized_pagerank(rmat, 3, max_iterations=5).ranks,
        )

    def test_cache_hit_short_circuits_engine(self, registry):
        with _service(registry) as service:
            first = service.query("sym", "bfs", {"root": 5})
            dispatches = service.stats()["scheduler"]["dispatches"]
            second = service.query("sym", "bfs", {"root": 5})
            assert service.stats()["scheduler"]["dispatches"] == dispatches
        assert not first.cached and second.cached
        assert second.batch_k == 0 and second.engine == {}
        assert np.array_equal(first.values, second.values)
        # Parameter canonicalization makes spelling-variant repeats hit.
        with _service(registry) as service:
            service.query("dir", "ppr", {"source": 2})
            repeat = service.query(
                "dir", "ppr", {"source": "2", "r": 0.15, "iterations": 30}
            )
        assert repeat.cached

    def test_identical_in_flight_queries_share_one_lane(
        self, registry, rmat_sym
    ):
        """N concurrent requests for the same query dedupe onto one
        engine lane (the hot-root pattern before the cache is warm)."""
        policy = BatchPolicy(max_batch_k=4, max_wait_ms=LONG_WAIT_MS)
        with GraphService(registry, policy=policy) as service:
            with ThreadPoolExecutor(4) as pool:
                results = list(
                    pool.map(
                        lambda _: service.query("sym", "bfs", {"root": 9}),
                        range(4),
                    )
                )
            stats = service.stats()["scheduler"]
        expected = run_bfs(rmat_sym, 9).distances
        for result in results:
            assert np.array_equal(result.values, expected)
            # batch_k reports engine lanes: one, shared by all four.
            assert result.batch_k == 1
        assert stats["lanes_dispatched"] == 4  # tickets, pre-dedup
        assert stats["dispatches"] == 1

    def test_mixed_kinds_in_flight_are_all_correct(self, registry, rmat_sym):
        queries = [("bfs", {"root": v}) for v in (1, 2, 3, 4)]
        queries += [("sssp", {"source": v}) for v in (1, 2, 3, 4)]
        with _service(registry) as service, ThreadPoolExecutor(8) as pool:
            results = list(
                pool.map(lambda q: service.query("sym", q[0], q[1]), queries)
            )
            stats = service.stats()
        for (kind, params), result in zip(queries, results):
            if kind == "bfs":
                expected = run_bfs(rmat_sym, params["root"]).distances
            else:
                expected = run_sssp(rmat_sym, params["source"]).distances
            assert np.array_equal(result.values, expected)
        # bfs and sssp can never share a dispatch.
        assert stats["scheduler"]["dispatches"] >= 2

    def test_queue_full_sheds_with_service_error(self, registry):
        policy = BatchPolicy(max_batch_k=1, max_wait_ms=0.0, max_queue=1)
        with GraphService(registry, policy=policy) as service:
            with ThreadPoolExecutor(8) as pool:
                futures = [
                    pool.submit(service.query, "sym", "bfs", {"root": v})
                    for v in range(8)
                ]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append(future.result(timeout=30))
                    except ServiceOverloadedError:
                        outcomes.append(None)
            shed = sum(1 for o in outcomes if o is None)
            assert service.stats()["scheduler"]["shed"] == shed
            # Admitted queries all resolved correctly despite the churn.
            assert any(o is not None for o in outcomes)

    def test_bad_requests_rejected_before_the_queue(self, registry):
        with _service(registry) as service:
            with pytest.raises(UnknownGraphError):
                service.query("nope", "bfs", {"root": 0})
            with pytest.raises(BadQueryError):
                service.query("sym", "nope", {})
            with pytest.raises(BadQueryError):
                service.query("sym", "bfs", {"root": -1})
            assert service.stats()["scheduler"]["submitted"] == 0

    def test_stats_json_serializable(self, registry):
        with _service(registry) as service:
            service.query("sym", "bfs", {"root": 0})
            document = json.loads(json.dumps(service.stats()))
        assert document["queries"] == 1
        assert document["queries_by_kind"] == {"bfs": 1}
        assert document["scheduler"]["lanes_dispatched"] == 1
        assert document["cache"]["misses"] == 1

    def test_result_top_and_vertices_views(self, registry, rmat_sym):
        with _service(registry) as service:
            result = service.query("sym", "bfs", {"root": 0})
        top = result.to_dict(top=5, order="min")["top"]
        assert top[0] == [0, 0.0]
        assert all(a[1] <= b[1] for a, b in zip(top, top[1:]))
        picked = result.to_dict(vertices=[0, 1])["values"]
        assert picked[0] == 0.0
        full = result.to_dict()
        assert len(full["values"]) == rmat_sym.n_vertices
        json.dumps(full)  # inf distances must serialize (as null)


# ----------------------------------------------------------------------
# Deadline governance: dispatch-time expiry + service admission
# ----------------------------------------------------------------------
class TestSchedulerDeadlines:
    def test_expired_ticket_fails_without_dispatch(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=4, max_wait_ms=0.0)
        ) as batcher:
            dead = Ticket(
                group="g", payload=0, deadline_at=time.monotonic() - 1.0
            )
            future = batcher.submit(dead)
            with pytest.raises(DeadlineExceededError, match="while queued"):
                future.result(timeout=10)
        assert executor.batches == []  # no engine lane was spent
        stats = batcher.stats()
        assert stats["expired"] == 1
        assert stats["dispatches"] == 0

    def test_mixed_batch_drops_only_the_expired(self):
        executor = _StubExecutor()
        with MicroBatcher(
            executor, BatchPolicy(max_batch_k=2, max_wait_ms=LONG_WAIT_MS)
        ) as batcher:
            live = Ticket(
                group="g", payload=0, deadline_at=time.monotonic() + 60.0
            )
            dead = Ticket(
                group="g", payload=1, deadline_at=time.monotonic() - 1.0
            )
            live_future = batcher.submit(live)
            dead_future = batcher.submit(dead)  # fills the K=2 batch
            assert live_future.result(timeout=10) == ("g", 1)
            with pytest.raises(DeadlineExceededError):
                dead_future.result(timeout=10)
        stats = batcher.stats()
        assert stats["expired"] == 1
        assert stats["dispatches"] == 1
        assert stats["lanes_dispatched"] == 1  # the dead lane not counted

    def test_expired_crash_point_still_resolves_futures(self):
        """The ``raise`` action at serve.dispatch.expired must neither
        strand the expired callers nor kill the dispatcher."""
        from repro import faults
        from repro.faults import InjectedFault

        executor = _StubExecutor()
        faults.activate("serve.dispatch.expired=raise")
        try:
            with MicroBatcher(
                executor, BatchPolicy(max_batch_k=4, max_wait_ms=0.0)
            ) as batcher:
                dead = Ticket(
                    group="g", payload=0, deadline_at=time.monotonic() - 1.0
                )
                future = batcher.submit(dead)
                with pytest.raises(InjectedFault):
                    future.result(timeout=10)
                # The dispatcher survived: later traffic still flows.
                after = batcher.submit(Ticket(group="g", payload=1))
                assert after.result(timeout=10) == ("g", 1)
        finally:
            faults.deactivate()

    def test_overdue_group_wins_under_sustained_full_queues(self):
        """The hot group's queue is refilled to full before *every*
        dispatch decision, so the full-batch fast path is available at
        each step — the lone overdue request must still dispatch next
        rather than whenever the hot stream pauses."""
        step = threading.Semaphore(0)

        class _SteppedExecutor(_StubExecutor):
            def __call__(self, group, tickets):
                assert step.acquire(timeout=30)
                _StubExecutor.__call__(self, group, tickets)

        executor = _SteppedExecutor()
        pending = []
        batcher = MicroBatcher(
            executor, BatchPolicy(max_batch_k=2, max_wait_ms=30.0)
        )

        def _wait_batches(count):
            deadline = time.time() + 10
            while len(executor.batches) < count and time.time() < deadline:
                time.sleep(0.001)
            assert len(executor.batches) >= count

        try:
            # A full hot batch dispatches immediately and parks the
            # dispatcher on the semaphore.
            pending += [
                batcher.submit(Ticket(group="hot", payload=i))
                for i in range(2)
            ]
            deadline = time.time() + 10
            while batcher.pending and time.time() < deadline:
                time.sleep(0.001)
            pending.append(batcher.submit(Ticket(group="lone", payload=0)))
            time.sleep(0.06)  # lone is now past its 30 ms window
            # Sustained pressure: refill hot to a full, *young* queue
            # before releasing each dispatch decision.
            for round_number in range(3):
                pending += [
                    batcher.submit(
                        Ticket(group="hot", payload=(round_number, i))
                    )
                    for i in range(2)
                ]
                # Each release lets the currently-parked batch finish;
                # the dispatcher then makes its next decision with the
                # hot queue freshly full.
                step.release()
                _wait_batches(round_number + 1)
            for _ in range(4):  # drain whatever is left
                step.release()
            for future in pending:
                future.result(timeout=10)
        finally:
            for _ in range(8):
                step.release()
            batcher.close()
        groups = [group for group, _ in executor.batches]
        assert groups[0] == "hot"
        assert groups[1] == "lone", (
            f"overdue lone request starved by sustained full queues: {groups}"
        )


class TestSLODispatchOrdering:
    """Among several overdue groups the tightest deadline dispatches
    first; deadline-free groups keep the longest-waiting-first aging
    order.  White-box through ``_take_batch_locked`` with a fake clock:
    tickets are queued without notifying the (asleep) dispatcher, so the
    dispatch decisions under test are taken synchronously and can't race
    the real dispatcher thread."""

    def _queue(self, batcher, group, *, enqueued_at, deadline_at=None):
        ticket = Ticket(
            group=group,
            payload=0,
            enqueued_at=enqueued_at,
            deadline_at=deadline_at,
        )
        with batcher._cond:
            batcher._queues.setdefault(group, []).append(ticket)
            batcher._pending += 1
        return ticket

    def test_overdue_groups_dispatch_earliest_deadline_first(self):
        now = [1000.0]
        batcher = MicroBatcher(
            _StubExecutor(),
            BatchPolicy(max_batch_k=4, max_wait_ms=1.0),
            clock=lambda: now[0],
        )
        try:
            # All three overdue (the window is 1 ms); "lax" has waited
            # by far the longest but carries no deadline, so both
            # deadline-carrying groups outrank it — tightest first.
            self._queue(batcher, "lax", enqueued_at=0.0)
            self._queue(
                batcher, "loose", enqueued_at=999.0, deadline_at=2000.0
            )
            self._queue(
                batcher, "tight", enqueued_at=999.0, deadline_at=1005.0
            )
            order = []
            with batcher._cond:
                for _ in range(3):
                    group, tickets, _full = batcher._take_batch_locked()
                    order.append(group)
                    assert len(tickets) == 1
            assert order == ["tight", "loose", "lax"]
            # Only the deadline-ranked picks count as SLO dispatches.
            assert batcher._stats.slo_dispatches == 2
        finally:
            batcher.close(drain=False)

    def test_no_deadline_groups_keep_longest_wait_order(self):
        now = [1000.0]
        batcher = MicroBatcher(
            _StubExecutor(),
            BatchPolicy(max_batch_k=4, max_wait_ms=1.0),
            clock=lambda: now[0],
        )
        try:
            self._queue(batcher, "young", enqueued_at=999.0)
            self._queue(batcher, "old", enqueued_at=0.0)
            order = []
            with batcher._cond:
                for _ in range(2):
                    group, _tickets, _full = batcher._take_batch_locked()
                    order.append(group)
            assert order == ["old", "young"]
            assert batcher._stats.slo_dispatches == 0
            assert batcher.stats()["slo_dispatches"] == 0
        finally:
            batcher.close(drain=False)

    def test_earliest_deadline_within_next_batch_ranks_the_group(self):
        """The rank key reads only the tickets the next batch would
        take (``queue[:k]``): a tight deadline buried beyond the batch
        boundary must not jump its group ahead."""
        now = [1000.0]
        batcher = MicroBatcher(
            _StubExecutor(),
            BatchPolicy(max_batch_k=2, max_wait_ms=1.0),
            clock=lambda: now[0],
        )
        try:
            # Group "a": next batch (2 tickets) deadlines 1500, 1600;
            # a much tighter 1001 sits third, outside the K=2 window.
            self._queue(batcher, "a", enqueued_at=990.0, deadline_at=1500.0)
            self._queue(batcher, "a", enqueued_at=991.0, deadline_at=1600.0)
            self._queue(batcher, "a", enqueued_at=992.0, deadline_at=1001.0)
            self._queue(batcher, "b", enqueued_at=995.0, deadline_at=1400.0)
            with batcher._cond:
                group, _tickets, _full = batcher._take_batch_locked()
            assert group == "b"
        finally:
            batcher.close(drain=False)


class TestServiceGovernance:
    def test_infeasible_deadline_refused_at_admission(self, registry):
        policy = BatchPolicy(max_batch_k=8, max_wait_ms=LONG_WAIT_MS)
        with GraphService(registry, policy=policy) as service:
            # Pretend history: batches take ~10 s each.
            with service._lock:
                service._batch_seconds_ewma = 10.0
            with ThreadPoolExecutor(1) as pool:
                queued = pool.submit(
                    service.query, "sym", "bfs", {"root": 1}
                )
                deadline = time.time() + 10
                while not service._batcher.pending and time.time() < deadline:
                    time.sleep(0.001)
                with pytest.raises(
                    DeadlineExceededError, match="refused at admission"
                ):
                    service.query("sym", "bfs", {"root": 2}, deadline=0.5)
                governance = service.stats()["governance"]
                assert governance["deadline_refused"] == 1
                assert queued.result(timeout=30) is not None

    def test_runaway_lane_cancelled_with_run_stats(self, registry, rmat):
        policy = BatchPolicy(max_batch_k=1, max_wait_ms=0.0)
        with GraphService(registry, policy=policy) as service:
            with pytest.raises(
                DeadlineExceededError, match="query cancelled after"
            ) as excinfo:
                service.query(
                    "dir", "ppr",
                    {"source": 0, "iterations": 1000},
                    deadline=0.005,
                )
            stats = excinfo.value.run_stats
            assert stats is not None and stats.cancelled
            assert "deadline exceeded" in stats.cancel_reason
            assert 0 < stats.n_supersteps < 1000
            governance = service.stats()["governance"]
            assert governance["cancelled_lanes"] == 1
            # A truncated run is not the query's answer: nothing cached.
            assert service.stats()["cache"]["entries"] == 0

    def test_dedup_lane_runs_to_the_most_patient_twin(
        self, registry, rmat
    ):
        """Identical queries share a lane; a no-deadline twin means the
        lane must NOT be cancelled by its impatient sibling."""
        policy = BatchPolicy(max_batch_k=2, max_wait_ms=LONG_WAIT_MS)
        params = {"source": 5, "iterations": 40}
        with GraphService(registry, policy=policy) as service:
            with ThreadPoolExecutor(2) as pool:
                impatient = pool.submit(
                    service.query, "dir", "ppr", dict(params),
                    deadline=30.0,
                )
                patient = pool.submit(
                    service.query, "dir", "ppr", dict(params)
                )
                results = [impatient.result(30), patient.result(30)]
        expected = run_personalized_pagerank(
            rmat, 5, max_iterations=40
        ).ranks
        for result in results:
            assert np.array_equal(result.values, expected)

    def test_quota_governs_admission_not_validation(self, registry):
        from repro.serve.quota import QuotaManager, TenantPolicy

        quota = QuotaManager(default=TenantPolicy(rate=1.0, burst=1))
        with _service(registry, quota=quota) as service:
            # Malformed requests are rejected before quota: no token burnt.
            with pytest.raises(BadQueryError):
                service.query("sym", "bfs", {"root": -1}, tenant="a")
            service.query("sym", "bfs", {"root": 1}, tenant="a")
            with pytest.raises(QuotaExceededError) as excinfo:
                service.query("sym", "bfs", {"root": 2}, tenant="a")
            assert excinfo.value.retry_after > 0
            # Another tenant is untouched by a's exhaustion.
            service.query("sym", "bfs", {"root": 3}, tenant="b")
            tenants = service.stats()["governance"]["quota"]["tenants"]
            assert tenants["a"]["admitted"] == 1
            assert tenants["a"]["rejected_rate"] == 1
            assert tenants["a"]["in_flight"] == 0  # released after answer
            assert tenants["b"]["admitted"] == 1

    def test_default_deadline_applies_when_request_names_none(
        self, registry
    ):
        with _service(registry, default_deadline=1e-9) as service:
            # Every undeadlined request inherits the (hopeless) default.
            with pytest.raises(DeadlineExceededError):
                service.query("sym", "bfs", {"root": 0})
            # An explicit deadline overrides it.
            result = service.query("sym", "bfs", {"root": 0}, deadline=30.0)
            assert result.values is not None

    def test_bad_deadline_rejected(self, registry):
        with _service(registry) as service:
            with pytest.raises(BadQueryError, match="deadline"):
                service.query("sym", "bfs", {"root": 0}, deadline=0)
            with pytest.raises(BadQueryError, match="deadline"):
                service.query("sym", "bfs", {"root": 0}, deadline="soon")

    def test_governance_stats_shape(self, registry):
        with _service(registry) as service:
            governance = json.loads(json.dumps(service.stats()))["governance"]
        assert governance["quota"] is None
        assert governance["cancelled_lanes"] == 0
        assert governance["deadline_refused"] == 0
        assert governance["batch_seconds_ewma"] == 0.0
