"""COO / CSR / CSC structural tests and cross-format equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError, ShapeError
from repro.matrix.coo import COOMatrix
from repro.matrix.csc import CSCMatrix
from repro.matrix.csr import CSRMatrix
from repro.matrix.ops import dense_from, matrices_equal, row_nnz, col_nnz


def small_coo():
    return COOMatrix(
        (4, 4),
        np.array([0, 0, 1, 2, 3]),
        np.array([1, 2, 2, 3, 0]),
        np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    )


class TestCOO:
    def test_nnz_and_shape(self):
        coo = small_coo()
        assert coo.nnz == 5
        assert coo.shape == (4, 4)

    def test_unweighted_defaults_to_ones(self):
        coo = COOMatrix((2, 2), np.array([0]), np.array([1]))
        assert coo.vals.tolist() == [1]

    def test_out_of_range_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([2]), np.array([0]))
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([0]), np.array([-1]))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ShapeError):
            COOMatrix((2, 2), np.array([0]), np.array([0, 1]))
        with pytest.raises(ShapeError):
            COOMatrix((2, 2), np.array([0]), np.array([0]), np.array([1.0, 2.0]))

    def test_transpose_swaps(self):
        t = small_coo().transpose()
        assert t.shape == (4, 4)
        assert matrices_equal(t.transpose(), small_coo())

    def test_dedup_last(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([1.0, 9.0])
        )
        assert coo.deduplicated("last").vals.tolist() == [9.0]

    def test_dedup_sum_min_max(self):
        coo = COOMatrix(
            (2, 2), np.array([0, 0]), np.array([1, 1]), np.array([2.0, 5.0])
        )
        assert coo.deduplicated("sum").vals.tolist() == [7.0]
        assert coo.deduplicated("min").vals.tolist() == [2.0]
        assert coo.deduplicated("max").vals.tolist() == [5.0]

    def test_dedup_unknown_policy(self):
        with pytest.raises(ValueError):
            small_coo().deduplicated("median")

    def test_without_self_loops(self):
        coo = COOMatrix((3, 3), np.array([0, 1]), np.array([0, 2]))
        cleaned = coo.without_self_loops()
        assert cleaned.nnz == 1
        assert cleaned.rows.tolist() == [1]

    def test_symmetrized(self):
        coo = COOMatrix((3, 3), np.array([0]), np.array([1]), np.array([4.0]))
        sym = coo.symmetrized()
        dense = dense_from(sym)
        assert dense[0, 1] == 4.0 and dense[1, 0] == 4.0

    def test_symmetrize_requires_square(self):
        with pytest.raises(ShapeError):
            COOMatrix((2, 3), np.array([0]), np.array([1])).symmetrized()

    def test_upper_triangle(self):
        sym = small_coo().symmetrized()
        upper = sym.upper_triangle()
        assert np.all(upper.rows < upper.cols)

    def test_sorted_by(self):
        coo = small_coo().sorted_by("col-major")
        keys = coo.cols * 10 + coo.rows
        assert np.all(np.diff(keys) >= 0)
        with pytest.raises(ValueError):
            small_coo().sorted_by("diagonal")

    def test_select_shape_mismatch(self):
        with pytest.raises(ShapeError):
            small_coo().select(np.array([True]))

    def test_scipy_roundtrip(self):
        coo = small_coo()
        back = COOMatrix.from_scipy(coo.to_scipy())
        assert matrices_equal(coo, back)

    def test_equality(self):
        assert small_coo() == small_coo()
        other = COOMatrix((4, 4), np.array([0]), np.array([1]))
        assert small_coo() != other

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(small_coo())


class TestCSR:
    def test_from_coo_rows(self):
        csr = CSRMatrix.from_coo(small_coo())
        cols, vals = csr.row(0)
        assert cols.tolist() == [1, 2]
        assert vals.tolist() == [1.0, 2.0]
        assert csr.row_degree(0) == 2

    def test_degrees(self):
        csr = CSRMatrix.from_coo(small_coo())
        assert csr.degrees().tolist() == [2, 1, 1, 1]

    def test_row_out_of_range(self):
        csr = CSRMatrix.from_coo(small_coo())
        with pytest.raises(IndexError):
            csr.row(4)

    def test_roundtrip(self):
        csr = CSRMatrix.from_coo(small_coo())
        assert matrices_equal(csr.to_coo(), small_coo())

    def test_rows_sorted(self):
        csr = CSRMatrix.from_coo(small_coo())
        assert csr.rows_sorted()

    def test_validate_bad_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                (2, 2),
                np.array([0, 2, 1]),
                np.array([0, 1]),
                np.array([1.0, 1.0]),
            )

    def test_validate_bad_lengths(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                (2, 2), np.array([0, 1, 2]), np.array([0]), np.array([1.0])
            )

    def test_validate_bad_column(self):
        with pytest.raises(FormatError):
            CSRMatrix(
                (2, 2),
                np.array([0, 1, 2]),
                np.array([0, 5]),
                np.array([1.0, 1.0]),
            )


class TestCSC:
    def test_from_coo_columns(self):
        csc = CSCMatrix.from_coo(small_coo())
        rows, vals = csc.column(2)
        assert rows.tolist() == [0, 1]
        assert vals.tolist() == [2.0, 3.0]
        assert csc.column_degree(2) == 2

    def test_roundtrip(self):
        csc = CSCMatrix.from_coo(small_coo())
        assert matrices_equal(csc.to_coo(), small_coo())

    def test_column_out_of_range(self):
        csc = CSCMatrix.from_coo(small_coo())
        with pytest.raises(IndexError):
            csc.column(9)

    def test_degrees(self):
        csc = CSCMatrix.from_coo(small_coo())
        assert csc.degrees().tolist() == [1, 1, 2, 1]


class TestOps:
    def test_row_col_nnz(self):
        coo = small_coo()
        assert row_nnz(coo).tolist() == [2, 1, 1, 1]
        assert col_nnz(coo).tolist() == [1, 1, 2, 1]

    def test_dense_from(self):
        dense = dense_from(small_coo())
        assert dense[0, 1] == 1.0 and dense[3, 0] == 5.0


@st.composite
def coo_matrices(draw, max_dim=12, max_nnz=40):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=nnz, max_size=nnz
        )
    )
    return COOMatrix(
        (n_rows, n_cols),
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals),
    )


@given(coo=coo_matrices())
@settings(max_examples=60, deadline=None)
def test_csr_csc_roundtrips_preserve_matrix(coo):
    deduped = coo.deduplicated("last")
    csr = CSRMatrix.from_coo(deduped)
    csc = CSCMatrix.from_coo(deduped)
    assert matrices_equal(csr.to_coo(), deduped)
    assert matrices_equal(csc.to_coo(), deduped)
    assert np.allclose(dense_from(csr), dense_from(csc))


@given(coo=coo_matrices())
@settings(max_examples=40, deadline=None)
def test_dedup_sum_matches_scipy(coo):
    ours = dense_from(coo.deduplicated("sum"))
    theirs = coo.to_scipy().toarray()
    assert np.allclose(ours, theirs)


@given(coo=coo_matrices())
@settings(max_examples=40, deadline=None)
def test_transpose_involution(coo):
    assert matrices_equal(coo.transpose().transpose(), coo)
