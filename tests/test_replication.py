"""Leader -> follower replication: cursors, catch-up-then-swap, staleness.

These run leader and follower in one process (real HTTP over loopback,
port 0) so they stay fast enough for the default lane; crash-recovery
of the replication pair under SIGKILL is the harness suite's job.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServeError, StaleReadError
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve import (
    GraphRegistry,
    GraphService,
    ReplicationFollower,
    make_server,
)
from repro.store.delta_log import LOG_START
from repro.store.snapshot import save_snapshot


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=6, edge_factor=8, seed=21))


@pytest.fixture()
def leader(sym, tmp_path):
    snap = tmp_path / "g.gmsnap"
    save_snapshot(sym, snap)
    registry = GraphRegistry()
    registry.add_snapshot("g", snap)
    service = GraphService(registry, delta_log_dir=tmp_path / "leader-wal")
    server = make_server(service, "127.0.0.1", 0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    yield service, server, url
    server.shutdown()
    server.server_close()
    service.close()


def _follower(leader_url, tmp_path, **kwargs):
    registry = GraphRegistry()
    service = GraphService(registry, read_only=True)
    follower = ReplicationFollower(
        service,
        leader_url,
        replica_dir=tmp_path / "replica",
        poll_timeout=kwargs.pop("poll_timeout", 1.0),
        **kwargs,
    )
    return service, follower


def _wait(predicate, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


def _caught_up(leader_service, follower_service):
    def check():
        try:
            return (
                follower_service.registry.entry("g").epoch
                == leader_service.registry.entry("g").epoch
            )
        except Exception:  # noqa: BLE001 — not installed yet
            return False

    return check


class TestWaitForLog:
    """The leader-side cursor protocol, driven directly."""

    def test_timeout_returns_empty(self, leader):
        service, _server, _url = leader
        data, offset, status = service.wait_for_log("g", LOG_START, 0, 0.0)
        assert data == b"" and offset == LOG_START
        assert status["generation"] == 0

    def test_append_wakes_long_poll(self, leader):
        service, _server, _url = leader
        out = {}

        def poll():
            out["result"] = service.wait_for_log("g", LOG_START, 0, 10.0)

        thread = threading.Thread(target=poll)
        thread.start()
        time.sleep(0.05)
        service.mutate("g", inserts=([0], [1]))
        thread.join(timeout=10.0)
        data, next_offset, _status = out["result"]
        assert data and next_offset > LOG_START

    def test_generation_mismatch_invalidates_cursor(self, leader):
        service, _server, _url = leader
        data, offset, status = service.wait_for_log("g", LOG_START, 7, 0.0)
        assert data is None and offset == LOG_START
        assert status["generation"] == 0

    def test_offset_past_end_invalidates_cursor(self, leader):
        service, _server, _url = leader
        data, _offset, _status = service.wait_for_log("g", 1 << 30, 0, 0.0)
        assert data is None

    def test_replication_requires_durable_leader(self, sym):
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        service = GraphService(registry)  # no delta_log_dir
        with pytest.raises(ServeError):
            service.replication_status("g")
        service.close()


class TestFollower:
    def test_bootstrap_tail_and_bitwise_parity(self, leader, tmp_path):
        lsvc, _server, url = leader
        for i in range(3):
            lsvc.mutate("g", inserts=([i], [i + 40]))
        fsvc, follower = _follower(url, tmp_path)
        follower.start()
        assert _wait(_caught_up(lsvc, fsvc))
        # Mutations made *while* tailing arrive too.
        lsvc.mutate("g", inserts=([7, 8], [9, 10]))
        assert _wait(_caught_up(lsvc, fsvc))
        want = lsvc.query("g", "bfs", {"root": 0}).values
        got = fsvc.query("g", "bfs", {"root": 0}).values
        assert np.array_equal(want, got, equal_nan=True)
        assert follower.ready() == (True, "ok")
        assert follower.status()["graphs"]["g"]["lag"] == 0
        follower.stop()
        fsvc.close()

    def test_compaction_triggers_reinstall(self, sym, tmp_path):
        snap = tmp_path / "g.gmsnap"
        save_snapshot(sym, snap)
        registry = GraphRegistry()
        registry.add_snapshot("g", snap)
        lsvc = GraphService(
            registry,
            delta_log_dir=tmp_path / "wal",
            compact_threshold=0.05,
        )
        server = make_server(lsvc, "127.0.0.1", 0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = "http://%s:%s" % server.server_address[:2]
        fsvc, follower = _follower(url, tmp_path)
        follower.start()
        assert _wait(_caught_up(lsvc, fsvc))
        rng = np.random.default_rng(1)
        for _ in range(12):
            src = rng.integers(0, sym.n_vertices, 10).tolist()
            dst = rng.integers(0, sym.n_vertices, 10).tolist()
            lsvc.mutate("g", inserts=(src, dst))
        assert lsvc.stats()["mutations"]["compactions"] > 0
        assert _wait(_caught_up(lsvc, fsvc))
        want = lsvc.query("g", "bfs", {"root": 0}).values
        got = fsvc.query("g", "bfs", {"root": 0}).values
        assert np.array_equal(want, got, equal_nan=True)
        # The follower crossed at least one generation boundary: its
        # bootstrap plus >= 1 snapshot reinstall.
        assert follower.status()["snapshots_installed"] >= 2
        follower.stop()
        fsvc.close()
        server.shutdown()
        server.server_close()
        lsvc.close()

    def test_follower_restart_resumes_from_local_state(self, leader, tmp_path):
        lsvc, _server, url = leader
        for i in range(4):
            lsvc.mutate("g", inserts=([i], [i + 30]))
        fsvc, follower = _follower(url, tmp_path)
        follower.start()
        assert _wait(_caught_up(lsvc, fsvc))
        follower.stop()
        fsvc.close()
        # Restart over the same replica_dir: local snapshot + local log
        # resume without re-downloading the snapshot.
        fsvc2, follower2 = _follower(url, tmp_path)
        follower2.start()
        assert _wait(_caught_up(lsvc, fsvc2))
        assert follower2.status()["snapshots_installed"] == 0
        want = lsvc.query("g", "bfs", {"root": 1}).values
        got = fsvc2.query("g", "bfs", {"root": 1}).values
        assert np.array_equal(want, got, equal_nan=True)
        follower2.stop()
        fsvc2.close()

    def test_staleness_guard(self, leader, tmp_path):
        lsvc, _server, url = leader
        fsvc, follower = _follower(url, tmp_path, max_epoch_lag=2)
        follower.start()
        assert _wait(_caught_up(lsvc, fsvc))
        follower.check_read("g")  # lag 0: fine
        # Fake a leader that surged ahead while the link was down.
        follower._leader_epoch["g"] = (
            fsvc.registry.entry("g").epoch + 3
        )
        with pytest.raises(StaleReadError):
            follower.check_read("g")
        # Unreplicated graphs are not guarded (the registry 404s them).
        follower.check_read("other")
        follower.stop()
        fsvc.close()


class TestReplicationHTTP:
    def _get_raw(self, url, path):
        try:
            with urllib.request.urlopen(url + path, timeout=10.0) as reply:
                return reply.status, dict(reply.headers), reply.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def test_status_log_and_snapshot_endpoints(self, leader):
        lsvc, _server, url = leader
        lsvc.mutate("g", inserts=([0], [1]))
        status, _headers, body = self._get_raw(url, "/replication/g/status")
        assert status == 200
        doc = json.loads(body)
        assert doc["epoch"] == 1 and doc["generation"] == 0
        status, headers, body = self._get_raw(
            url, f"/replication/g/log?offset={LOG_START}&generation=0&timeout=0"
        )
        assert status == 200 and body
        assert int(headers["X-Repro-Next-Offset"]) == LOG_START + len(body)
        # Nothing new at the advanced cursor -> 204 with headers, no body.
        next_offset = int(headers["X-Repro-Next-Offset"])
        status, headers, body = self._get_raw(
            url,
            f"/replication/g/log?offset={next_offset}&generation=0&timeout=0",
        )
        assert status == 204 and body == b""
        assert int(headers["X-Repro-Epoch"]) == 1
        # Stale generation -> 409 with a fresh status to restart from.
        status, _headers, body = self._get_raw(
            url, f"/replication/g/log?offset={LOG_START}&generation=9&timeout=0"
        )
        assert status == 409
        assert json.loads(body)["generation"] == 0
        status, headers, body = self._get_raw(url, "/replication/g/snapshot")
        assert status == 200 and body[:4] == b"\x89GMS"
        assert headers["X-Repro-Epoch"] == "0"

    def test_unknown_graph_404(self, leader):
        _lsvc, _server, url = leader
        status, _headers, _body = self._get_raw(
            url, "/replication/nope/status"
        )
        assert status == 404

    def test_follower_rejects_writes_403(self, leader, tmp_path):
        lsvc, _server, url = leader
        fsvc, follower = _follower(url, tmp_path)
        follower.start()
        assert _wait(_caught_up(lsvc, fsvc))
        fserver = make_server(fsvc, "127.0.0.1", 0)
        fserver.follower = follower
        threading.Thread(target=fserver.serve_forever, daemon=True).start()
        furl = "http://%s:%s" % fserver.server_address[:2]
        request = urllib.request.Request(
            furl + "/graphs/g/edges",
            data=json.dumps({"insert": [[0, 1]]}).encode(),
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 403
        fserver.shutdown()
        fserver.server_close()
        follower.stop()
        fsvc.close()
