"""Execution backends: parity, workspace reuse, options and scheduling.

Every algorithm must produce *identical* results under the serial,
threaded and process backends — the executors drive the same per-block
kernel over partitions with disjoint output rows, so there is no
legitimate source of divergence, and the assertions here are exact
(``np.array_equal``), not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.algorithms.collaborative_filtering import run_collaborative_filtering
from repro.algorithms.connected_components import run_connected_components
from repro.algorithms.degree import in_degrees_via_spmv
from repro.algorithms.label_propagation import run_label_propagation
from repro.algorithms.pagerank import PageRankProgram, init_pagerank, run_pagerank
from repro.algorithms.sssp import run_sssp
from repro.algorithms.triangle_count import run_triangle_count
from repro.core.engine import graph_program_init, run_graph_program
from repro.core.options import KNOWN_BACKENDS, EngineOptions
from repro.errors import ProgramError
from repro.exec import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    available_backends,
    create_executor,
)
from repro.exec.jit import jit_tier_available
from repro.graph.generators.bipartite import BipartiteSpec, bipartite_rating_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize, to_dag
from repro.matrix.partition import PartitionedMatrix
from repro.perf.counters import EventCounters

BACKEND_NAMES = list(KNOWN_BACKENDS)


def _options(backend: str, **kw) -> EngineOptions:
    return EngineOptions(backend=backend, n_workers=2, **kw)


def _expected_backend(backend: str) -> str:
    """What ``RunStats.backend`` should record for ``backend``.

    The stats record the executor that actually ran; without numba the
    jit tiers substitute their NumPy fallbacks (serial / threaded).
    """
    if jit_tier_available():
        return backend
    return {"jit": "serial", "jit-threaded": "threaded"}.get(backend, backend)


@pytest.fixture(scope="module")
def rmat():
    """One deterministic R-MAT graph reused by every parity test."""
    return rmat_graph(scale=7, edge_factor=8, seed=11)


@pytest.fixture(scope="module")
def rmat_sym(rmat):
    return symmetrize(rmat)


class TestBackendParity:
    """Satellite: every algorithm identical under every backend."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_pagerank(self, rmat, backend):
        ref = run_pagerank(rmat, max_iterations=8)
        got = run_pagerank(rmat, max_iterations=8, options=_options(backend))
        assert np.array_equal(ref.ranks, got.ranks)
        assert got.stats.backend == _expected_backend(backend)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_bfs(self, rmat_sym, backend):
        ref = run_bfs(rmat_sym, 0)
        got = run_bfs(rmat_sym, 0, options=_options(backend))
        assert np.array_equal(ref.distances, got.distances)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_sssp(self, rmat_sym, backend):
        ref = run_sssp(rmat_sym, 0)
        got = run_sssp(rmat_sym, 0, options=_options(backend))
        assert np.array_equal(ref.distances, got.distances)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_connected_components(self, rmat_sym, backend):
        ref = run_connected_components(rmat_sym)
        got = run_connected_components(rmat_sym, options=_options(backend))
        assert np.array_equal(ref.labels, got.labels)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_label_propagation(self, rmat_sym, backend):
        seeds = {0: 0, 5: 1, 9: 2}
        ref = run_label_propagation(rmat_sym, seeds)
        got = run_label_propagation(rmat_sym, seeds, options=_options(backend))
        assert np.array_equal(ref.labels, got.labels)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_triangle_count(self, rmat_sym, backend):
        dag = to_dag(rmat_sym)
        ref = run_triangle_count(dag)
        got = run_triangle_count(dag, options=_options(backend))
        assert ref.total == got.total
        assert np.array_equal(ref.per_vertex, got.per_vertex)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_collaborative_filtering(self, backend):
        spec = BipartiteSpec(n_users=60, n_items=40, ratings_per_user=6.0)
        graph = bipartite_rating_graph(spec, seed=5)
        ref = run_collaborative_filtering(
            graph, spec.n_users, k=4, iterations=3, track_rmse=False
        )
        got = run_collaborative_filtering(
            graph,
            spec.n_users,
            k=4,
            iterations=3,
            track_rmse=False,
            options=_options(backend),
        )
        assert np.array_equal(ref.factors, got.factors)

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_degrees(self, rmat, backend):
        ref = in_degrees_via_spmv(rmat)
        got = in_degrees_via_spmv(rmat, _options(backend))
        assert np.array_equal(ref, got)


class TestObjectProgramFallback:
    def test_process_backend_falls_back_for_object_properties(self, rmat_sym):
        """Object-valued programs cannot cross the process boundary; the
        engine must transparently run them on the serial schedule."""
        dag = to_dag(rmat_sym)
        result = run_triangle_count(dag, options=_options("process"))
        # Phase 1 gathers object neighbor lists -> must have fallen back.
        assert result.gather_stats.backend == "serial"

    def test_supports_rejects_object_specs(self):
        from repro.algorithms.triangle_count import NeighborGatherProgram

        executor = ProcessExecutor(2)
        assert not executor.supports(NeighborGatherProgram())
        executor.close()


class TestWorkspaceReuse:
    def test_fewer_allocations_with_workspace(self, rmat):
        """Acceptance: the zero-allocation workspace must show measurably
        fewer per-superstep allocations, counter-verified."""
        reuse, churn = EventCounters(), EventCounters()
        run_pagerank(rmat, max_iterations=6, counters=reuse)
        run_pagerank(
            rmat,
            max_iterations=6,
            options=EngineOptions(reuse_workspace=False),
            counters=churn,
        )
        assert reuse.allocations < churn.allocations

    def test_workspace_runs_identical_results(self, rmat):
        ref = run_pagerank(rmat, max_iterations=6)
        baseline = run_pagerank(
            rmat, max_iterations=6, options=EngineOptions(reuse_workspace=False)
        )
        assert np.array_equal(ref.ranks, baseline.ranks)

    def test_prebuilt_workspace_reused_across_runs(self, rmat):
        program = PageRankProgram()
        with graph_program_init(rmat, program) as ws:
            assert ws.superstep is not None
            init_pagerank(rmat, program)
            run_graph_program(
                rmat,
                program,
                EngineOptions(max_iterations=3),
                workspace=ws,
            )
            first = rmat.vertex_properties.data.copy()
            init_pagerank(rmat, program)
            run_graph_program(
                rmat,
                program,
                EngineOptions(max_iterations=3),
                workspace=ws,
            )
            assert np.array_equal(first, rmat.vertex_properties.data)

    def test_mismatched_superstep_workspace_is_bypassed(self, rmat):
        """A workspace built for another program's specs must not be
        reused; the engine builds a run-local one instead."""
        from repro.algorithms.triangle_count import NeighborGatherProgram
        from repro.vector.sparse_vector import OBJECT

        pagerank_ws = graph_program_init(rmat, PageRankProgram())
        assert pagerank_ws.superstep is not None

        def gather_neighbors(workspace):
            gather = NeighborGatherProgram()
            rmat.init_properties(OBJECT)
            for v in range(rmat.n_vertices):
                rmat.vertex_properties.data[v] = v
            rmat.set_all_active()
            run_graph_program(
                rmat,
                gather,
                EngineOptions(max_iterations=1),
                workspace=workspace,
            )
            return [
                np.asarray(p).tolist() if isinstance(p, np.ndarray) else p
                for p in rmat.vertex_properties.data
            ]

        # Same graph + direction, object-valued specs: the PageRank
        # workspace's superstep buffers must be rejected by matches()
        # and the run must still produce the reference result.
        expected = gather_neighbors(None)
        with pagerank_ws:
            got = gather_neighbors(pagerank_ws)
        assert got == expected

    def test_direction_mismatched_workspace_rebuilds_views_and_scratch(self):
        """Regression: a workspace reused across an edge-direction
        mismatch must drop both its views *and* its superstep scratch —
        the asymmetric in/out partitions have different block sizes, and
        stale scratch overruns (IndexError) or silently truncates."""
        from repro.core.graph_program import EdgeDirection
        from repro.algorithms.sssp import SSSPProgram, init_sssp

        # Strongly asymmetric: out-partitions and in-partitions of the
        # same index have very different nnz.
        rng = np.random.default_rng(3)
        n = 400
        src = rng.integers(0, 40, 3000)       # sources concentrated low
        dst = rng.integers(0, n, 3000)        # destinations spread out
        from repro.graph.graph import Graph

        graph = Graph.from_edges(n, src, dst)
        root = int(np.bincount(src, minlength=n).argmax())

        class InSSSP(SSSPProgram):
            direction = EdgeDirection.IN_EDGES

        init_sssp(graph, root)
        run_graph_program(graph, SSSPProgram(), EngineOptions())
        expected = graph.vertex_properties.data.copy()

        with graph_program_init(graph, InSSSP()) as ws:  # IN_EDGES views
            init_sssp(graph, root)
            run_graph_program(graph, SSSPProgram(), EngineOptions(), workspace=ws)
        assert np.array_equal(expected, graph.vertex_properties.data)

    def test_batch_only_program_never_hits_scalar_kernel(self):
        """Regression: supports_fused() requires only the batch surface;
        tiny frontiers must not route batch-only programs to the scalar
        kernel (whose default scalar hooks raise NotImplementedError)."""
        from repro.core.graph_program import GraphProgram
        from repro.graph.graph import Graph
        from repro.vector.sparse_vector import FLOAT64

        class BatchOnly(GraphProgram):
            message_spec = result_spec = property_spec = FLOAT64
            reduce_ufunc = np.add

            def send_message_batch(self, props, vertices):
                return props

            def process_message_batch(self, messages, edge_values, dst_props):
                return messages * edge_values

            def apply_batch(self, reduced, props):
                return reduced

        n = 100
        src = np.arange(n - 1, dtype=np.int64)
        graph = Graph.from_edges(n, src, src + 1)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_vertex_property(0, 2.0)  # distinct value to propagate
        graph.set_all_inactive()
        graph.set_active(0)  # single-vertex frontier: scalar territory
        stats = run_graph_program(graph, BatchOnly(), EngineOptions(max_iterations=3))
        assert stats.n_supersteps == 3
        assert stats.kernel_totals() == {"sparse-gather": 3}
        assert graph.vertex_properties.data[3] == 2.0

    def test_process_built_workspace_does_not_disable_scratch_for_serial(self, rmat):
        """Regression: a workspace built under the process backend holds
        no parent-side scratch; a serial run reusing it must rebuild a
        scratch-enabled workspace, not silently lose the zero-allocation
        path."""
        program = PageRankProgram()
        run_opts = EngineOptions(max_iterations=3)
        baseline = EventCounters()
        init_pagerank(rmat, program)
        run_graph_program(rmat, program, run_opts, counters=baseline)

        proc_ws = graph_program_init(
            rmat, program, EngineOptions(backend="process", n_workers=2)
        )
        with proc_ws:
            assert proc_ws.superstep is not None
            assert not proc_ws.superstep.scratch_built
            via_ws = EventCounters()
            init_pagerank(rmat, program)
            run_graph_program(
                rmat, program, run_opts, workspace=proc_ws, counters=via_ws
            )
        assert via_ws.allocations == baseline.allocations

    def test_run_options_backend_overrides_workspace_executor(self, rmat):
        """The run's backend/n_workers win over the workspace's executor."""
        program = PageRankProgram()
        with graph_program_init(rmat, program) as ws:  # serial executor
            init_pagerank(rmat, program)
            stats = run_graph_program(
                rmat,
                program,
                EngineOptions(backend="threaded", n_workers=2, max_iterations=2),
                workspace=ws,
            )
        assert stats.backend == "threaded"


class TestKernelSelectorStats:
    def test_kernel_counts_recorded(self, rmat_sym):
        result = run_bfs(rmat_sym, 0)
        totals = result.stats.kernel_totals()
        assert totals, "fused runs must record kernel selections"
        assert set(totals) <= {"scalar", "sparse-gather", "dense-pull"}
        # A BFS frontier grows from one vertex to most of the graph: the
        # selector should have used more than one kernel along the way.
        assert len(totals) >= 2

    def test_partition_work_records_kernel(self, rmat):
        result = run_pagerank(
            rmat,
            max_iterations=2,
            options=EngineOptions(record_partition_stats=True),
        )
        work = result.stats.iterations[0].partition_work
        assert work
        assert any(w.kernel for w in work)


class TestOptionsValidation:
    """Satellite: option errors surface at construction, not mid-engine."""

    def test_unknown_backend_raises(self):
        with pytest.raises(ProgramError):
            EngineOptions(backend="gpu")

    def test_bad_worker_count_raises(self):
        with pytest.raises(ProgramError):
            EngineOptions(n_workers=0)

    def test_known_backends_match_registry(self):
        assert set(KNOWN_BACKENDS) == set(BACKENDS) == set(available_backends())

    def test_create_executor_names(self):
        for name in KNOWN_BACKENDS:
            executor = create_executor(EngineOptions(backend=name, n_workers=2))
            assert executor.name == name
            executor.close()

    def test_serial_executor_is_default(self):
        executor = create_executor(EngineOptions())
        assert isinstance(executor, SerialExecutor)


class TestScheduleChunks:
    def test_chunks_cover_all_blocks(self, rmat):
        view = rmat.out_partitions(8, "nnz")
        chunks = view.schedule_chunks(3)
        flat = sorted(i for chunk in chunks for i in chunk)
        assert flat == list(range(view.n_partitions))

    def test_chunks_balanced_by_nnz(self):
        # Skewed blocks: LPT should not put the two heaviest together.
        src = np.concatenate(
            [np.zeros(60, dtype=np.int64), np.array([5, 6, 7], dtype=np.int64)]
        )
        dst = np.concatenate(
            [np.arange(60, dtype=np.int64) % 4, np.array([1, 2, 3], dtype=np.int64)]
        )
        from repro.graph.graph import Graph

        graph = Graph.from_edges(8, src, dst, dedup=False)
        view = graph.out_partitions(4, "rows")
        chunks = view.schedule_chunks(2)
        nnz = view.block_nnz()
        loads = sorted(sum(int(nnz[i]) for i in chunk) for chunk in chunks)
        assert loads[-1] <= int(nnz.max()) + int(nnz.sum() - nnz.max())

    def test_invalid_chunk_count(self, rmat):
        view = rmat.out_partitions(4, "rows")
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            view.schedule_chunks(0)


class TestBlockPickling:
    def test_dcsc_pickle_drops_caches(self, rmat):
        import pickle

        view = rmat.out_partitions(4, "nnz")
        block = view.blocks[0]
        block.warm_caches()
        clone = pickle.loads(pickle.dumps(block))
        assert clone._dst_groups is None and clone._col_expanded is None
        assert np.array_equal(clone.ir, block.ir)
        # Rebuilt caches must agree with the originals.
        order, starts, rows = clone.dst_groups()
        o2, s2, r2 = block.dst_groups()
        assert np.array_equal(order, o2)
        assert np.array_equal(starts, s2)
        assert np.array_equal(rows, r2)

    def test_partitioned_matrix_roundtrip(self, rmat):
        import pickle

        view = rmat.out_partitions(4, "nnz")
        clone = pickle.loads(pickle.dumps(view))
        assert clone.nnz == view.nnz
        assert clone.to_coo().to_scipy().nnz == view.to_coo().to_scipy().nnz
