"""1-D row partitioner tests (paper section 4.4.1 / 4.5 item 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.matrix.coo import COOMatrix
from repro.matrix.ops import matrices_equal
from repro.matrix.partition import (
    PartitionedMatrix,
    row_ranges_equal_nnz,
    row_ranges_equal_rows,
)

from tests.test_matrix_formats import coo_matrices, small_coo


class TestRowRanges:
    def test_equal_rows_tiles(self):
        ranges = row_ranges_equal_rows(10, 3)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 10
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c

    def test_equal_rows_more_partitions_than_rows(self):
        ranges = row_ranges_equal_rows(2, 5)
        assert len(ranges) == 5
        assert ranges[-1][1] == 2

    def test_equal_rows_invalid(self):
        with pytest.raises(ShapeError):
            row_ranges_equal_rows(10, 0)

    def test_equal_nnz_balances_skew(self):
        # All nnz in the first row: the first partition should be tiny.
        row_counts = np.array([100, 1, 1, 1, 1, 1, 1, 1])
        ranges = row_ranges_equal_nnz(8, row_counts, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 8
        loads = [row_counts[lo:hi].sum() for lo, hi in ranges]
        # The heavy row is isolated rather than grouped with everything.
        assert max(loads) <= 101

    def test_equal_nnz_length_mismatch(self):
        with pytest.raises(ShapeError):
            row_ranges_equal_nnz(3, np.array([1, 2]), 2)


class TestPartitionedMatrix:
    def test_from_coo_covers_all_entries(self):
        pm = PartitionedMatrix.from_coo(small_coo(), 3)
        assert pm.nnz == small_coo().nnz
        assert matrices_equal(pm.to_coo(), small_coo())

    def test_single_partition(self):
        pm = PartitionedMatrix.from_coo(small_coo(), 1)
        assert pm.n_partitions == 1
        assert pm.blocks[0].row_range == (0, 4)

    def test_partitions_clamped_to_rows(self):
        pm = PartitionedMatrix.from_coo(small_coo(), 100)
        assert pm.n_partitions <= 4

    def test_strategies(self):
        for strategy in ("rows", "nnz"):
            pm = PartitionedMatrix.from_coo(small_coo(), 2, strategy)
            assert pm.nnz == small_coo().nnz
        with pytest.raises(ValueError):
            PartitionedMatrix.from_coo(small_coo(), 2, "hash")

    def test_block_nnz_and_imbalance(self):
        pm = PartitionedMatrix.from_coo(small_coo(), 2)
        assert pm.block_nnz().sum() == pm.nnz
        assert pm.imbalance() >= 1.0

    def test_overlapping_blocks_rejected(self):
        coo = small_coo()
        from repro.matrix.dcsc import DCSCMatrix

        b1 = DCSCMatrix.from_coo(coo, row_range=(0, 3))
        b2 = DCSCMatrix.from_coo(coo, row_range=(2, 4))
        with pytest.raises(ShapeError):
            PartitionedMatrix((4, 4), [b1, b2])

    def test_incomplete_cover_rejected(self):
        coo = small_coo()
        from repro.matrix.dcsc import DCSCMatrix

        b1 = DCSCMatrix.from_coo(coo, row_range=(0, 3))
        with pytest.raises(ShapeError):
            PartitionedMatrix((4, 4), [b1])

    def test_nnz_strategy_beats_rows_on_skew(self):
        # Skewed matrix: all edges into the first row range.
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 8, size=400)  # rows 0-7 hot, 8-63 empty
        cols = rng.integers(0, 64, size=400)
        coo = COOMatrix((64, 64), rows, cols)
        by_rows = PartitionedMatrix.from_coo(coo, 8, "rows")
        by_nnz = PartitionedMatrix.from_coo(coo, 8, "nnz")
        assert by_nnz.imbalance() <= by_rows.imbalance()


@given(coo=coo_matrices(max_dim=20, max_nnz=80), n_parts=st.integers(1, 8))
@settings(max_examples=50, deadline=None)
def test_partitioning_conserves_matrix(coo, n_parts):
    deduped = coo.deduplicated("last")
    for strategy in ("rows", "nnz"):
        pm = PartitionedMatrix.from_coo(deduped, n_parts, strategy)
        assert pm.nnz == deduped.nnz
        assert matrices_equal(pm.to_coo(), deduped)
        # Row ranges tile [0, n_rows)
        assert pm.blocks[0].row_range[0] == 0
        assert pm.blocks[-1].row_range[1] == deduped.shape[0]
