"""Generalized SpMV tests: all code paths agree with scipy reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph_program import EdgeDirection, SemiringProgram
from repro.core.options import EngineOptions
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.core.spmv import PartitionWork, spmv_fused, spmv_scalar
from repro.graph.graph import Graph
from repro.matrix.coo import COOMatrix
from repro.matrix.partition import PartitionedMatrix
from repro.vector.dense import PropertyArray
from repro.vector.sparse_vector import (
    FLOAT64,
    BitvectorVector,
    SortedTuplesVector,
)

from tests.test_matrix_formats import coo_matrices


def reference_spmv_plus_times(coo: COOMatrix, x_dense: np.ndarray) -> np.ndarray:
    """y = M x over (+, *) using scipy, for square matrices."""
    return coo.to_scipy().tocsr() @ x_dense


def _run_spmv(coo, x_idx, x_vals, semiring, *, fused, n_parts=2):
    """Drive one SpMV call directly (bypassing the engine loop)."""
    n = coo.shape[0]
    blocks = PartitionedMatrix.from_coo(coo, n_parts)
    program = SemiringProgram(semiring)
    properties = PropertyArray(n, FLOAT64)
    if fused:
        x = BitvectorVector(n)
        y = BitvectorVector(n)
    else:
        x = SortedTuplesVector(n)
        y = SortedTuplesVector(n)
    for i, v in zip(x_idx, x_vals):
        x.set(int(i), float(v))
    work: list[PartitionWork] = []
    if fused:
        edges = spmv_fused(blocks, x, y, program, properties, None, work)
    else:
        edges = spmv_scalar(blocks, x, y, program, properties, None, work)
    return y, edges, work


class TestAgainstScipy:
    def test_dense_input_plus_times(self):
        coo = COOMatrix(
            (4, 4),
            np.array([0, 1, 2, 3, 1]),
            np.array([1, 2, 3, 0, 0]),
            np.array([2.0, 3.0, 4.0, 5.0, 7.0]),
        )
        x_dense = np.array([1.0, 2.0, 3.0, 4.0])
        expected = reference_spmv_plus_times(coo, x_dense)
        for fused in (False, True):
            y, edges, _ = _run_spmv(
                coo, np.arange(4), x_dense, PLUS_TIMES, fused=fused
            )
            assert edges == coo.nnz
            got = y.to_dense(fill=0.0)
            assert np.allclose(got, expected)

    def test_sparse_input_only_touches_active_columns(self):
        coo = COOMatrix(
            (4, 4),
            np.array([1, 2, 3]),
            np.array([0, 0, 2]),
            np.array([1.0, 2.0, 3.0]),
        )
        # Only column 0 active: edges from column 2 must not fire.
        y, edges, _ = _run_spmv(
            coo, np.array([0]), np.array([10.0]), PLUS_TIMES, fused=True
        )
        assert edges == 2
        assert sorted(y.indices().tolist()) == [1, 2]

    def test_min_plus(self):
        coo = COOMatrix(
            (3, 3),
            np.array([1, 2, 2]),
            np.array([0, 0, 1]),
            np.array([5.0, 1.0, 10.0]),
        )
        for fused in (False, True):
            y, _, _ = _run_spmv(
                coo,
                np.array([0, 1]),
                np.array([0.0, 2.0]),
                MIN_PLUS,
                fused=fused,
            )
            assert y.get(1) == 5.0
            assert y.get(2) == 1.0  # min(0+1, 2+10)


class TestPartitionWork:
    def test_work_sums_to_edges(self):
        coo = COOMatrix(
            (6, 6),
            np.array([0, 1, 2, 3, 4, 5]),
            np.array([1, 2, 3, 4, 5, 0]),
        )
        y, edges, work = _run_spmv(
            coo,
            np.arange(6),
            np.ones(6),
            PLUS_TIMES,
            fused=True,
            n_parts=3,
        )
        assert sum(w.edges for w in work) == edges == coo.nnz
        assert len(work) == 3
        assert all(w.seconds >= 0 for w in work)


@given(coo=coo_matrices(max_dim=15, max_nnz=60), data=st.data())
@settings(max_examples=50, deadline=None)
def test_all_paths_match_scipy_on_square_matrices(coo, data):
    if coo.shape[0] != coo.shape[1]:
        n = max(coo.shape)
        coo = COOMatrix((n, n), coo.rows, coo.cols, coo.vals)
    coo = coo.deduplicated("last")
    n = coo.shape[0]
    active = data.draw(
        st.lists(st.integers(0, n - 1), max_size=n, unique=True)
    )
    x_dense = np.zeros(n)
    for i in active:
        x_dense[i] = data.draw(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        )
    full = coo.to_scipy().tocsr() @ x_dense
    # Expected: only rows fed by at least one active column have entries.
    expected_mask = np.zeros(n, dtype=bool)
    active_set = set(active)
    for k in range(coo.nnz):
        if int(coo.cols[k]) in active_set:
            expected_mask[coo.rows[k]] = True
    results = {}
    for fused in (False, True):
        y, _, _ = _run_spmv(
            coo,
            np.asarray(active, dtype=np.int64),
            x_dense[np.asarray(active, dtype=np.int64)]
            if active
            else np.zeros(0),
            PLUS_TIMES,
            fused=fused,
            n_parts=data.draw(st.integers(1, 4)),
        )
        got_mask = np.zeros(n, dtype=bool)
        got_mask[y.indices()] = True
        assert np.array_equal(got_mask, expected_mask)
        dense = y.to_dense(fill=0.0)
        assert np.allclose(dense[expected_mask], full[expected_mask])
        results[fused] = dense
    assert np.allclose(results[False], results[True])


class TestEngineOptionValidation:
    def test_bad_thread_count(self):
        with pytest.raises(Exception):
            EngineOptions(n_threads=0)

    def test_bad_strategy(self):
        with pytest.raises(Exception):
            EngineOptions(partition_strategy="zigzag")

    def test_bad_max_iterations(self):
        with pytest.raises(Exception):
            EngineOptions(max_iterations=0)
        with pytest.raises(Exception):
            EngineOptions(max_iterations=-2)

    def test_n_partitions_math(self):
        assert EngineOptions(n_threads=4, partitions_per_thread=8).n_partitions == 32
        assert (
            EngineOptions(n_threads=4, dynamic_schedule=False).n_partitions == 4
        )

    def test_with_updates(self):
        options = EngineOptions().with_(n_threads=4)
        assert options.n_threads == 4
        assert EngineOptions().n_threads == 1


class SaturatingMinProgram(SemiringProgram):
    """Min-plus with distances saturating at CAP == reduce_identity.

    A vertex whose only incoming path saturates receives a *real* reduced
    message equal to the identity sentinel — the case the dense-frontier
    kernel used to silently drop when it compared reduced values against
    the identity instead of tracking which rows actually received.
    """

    CAP = 8.0
    reduce_identity = CAP

    def __init__(self):
        super().__init__(MIN_PLUS)

    def process_message(self, message, edge_value, dst_prop):
        return min(message + edge_value, self.CAP)

    def process_message_batch(self, messages, edge_values, dst_props):
        return np.minimum(messages + edge_values, self.CAP)


class TestDenseFrontierIdentityHazard:
    """Regression: reduced value == reduce_identity must not be dropped."""

    def _saturating_setup(self):
        # Block layout chosen to force the masked dense-pull kernel:
        # 3 non-empty columns, 2 active (2*2 > 3), ~80 edges so the
        # estimated edge count exceeds the scalar-kernel threshold.
        n = 90
        src = np.concatenate(
            [
                np.zeros(40, dtype=np.int64),          # column 0: 40 edges
                np.ones(40, dtype=np.int64),           # column 1: 40 edges
                np.array([2], dtype=np.int64),         # column 2 (silent)
            ]
        )
        dst = np.concatenate(
            [
                np.arange(3, 43, dtype=np.int64),
                np.arange(43, 83, dtype=np.int64),
                np.array([83], dtype=np.int64),
            ]
        )
        # Columns are message sources (the engine multiplies by G^T):
        # store (row=dst, col=src).
        coo = COOMatrix((n, n), dst, src, np.ones(src.shape[0]))
        return n, coo

    def test_saturated_distances_survive_dense_kernel(self):
        n, coo = self._saturating_setup()
        blocks = PartitionedMatrix.from_coo(coo, 1)
        program = SaturatingMinProgram()
        properties = PropertyArray(n, FLOAT64)
        x = BitvectorVector(n)
        y = BitvectorVector(n)
        # Senders already at CAP - 0.5: every processed message saturates
        # to exactly CAP == reduce_identity.
        x.set(0, SaturatingMinProgram.CAP - 0.5)
        x.set(1, SaturatingMinProgram.CAP - 0.5)
        work: list[PartitionWork] = []
        spmv_fused(blocks, x, y, program, properties, None, work)
        assert work[0].kernel == "dense-pull", (
            "test setup no longer exercises the masked dense kernel"
        )
        received = y.indices()
        # All 80 destinations of the two active columns received a real
        # (saturated) message and must be present in y.
        assert received.shape[0] == 80
        assert np.all(y.values[received] == SaturatingMinProgram.CAP)

    def test_unsaturated_dense_kernel_matches_scalar_path(self):
        n, coo = self._saturating_setup()
        blocks = PartitionedMatrix.from_coo(coo, 1)
        program = SaturatingMinProgram()
        properties = PropertyArray(n, FLOAT64)
        x_f = BitvectorVector(n)
        y_f = BitvectorVector(n)
        x_s = SortedTuplesVector(n)
        y_s = SortedTuplesVector(n)
        for vec in (x_f, x_s):
            vec.set(0, 1.0)
            vec.set(1, 2.5)
        spmv_fused(blocks, x_f, y_f, program, properties)
        spmv_scalar(blocks, x_s, y_s, program, properties)
        assert np.array_equal(y_f.indices(), y_s.indices())
        assert np.allclose(
            y_f.values[y_f.indices()], y_s.gather(y_s.indices()).ravel()
        )


class TestSelectKernelBoundaries:
    """Satellite: the selector's edge cases, exercised directly."""

    def _block(self, n=64, cols=3, edges_per_col=20):
        # 60 edges over 3 columns: a 2-of-3 frontier estimates 40 edges,
        # above the default scalar budget (32), so the scalar-vs-dense
        # boundaries are both reachable.
        src = np.repeat(np.arange(cols, dtype=np.int64), edges_per_col)
        dst = np.arange(cols * edges_per_col, dtype=np.int64) % n
        coo = COOMatrix((n, n), dst, src, np.ones(src.shape[0]))
        return PartitionedMatrix.from_coo(coo, 1).blocks[0]

    def test_empty_frontier_prefers_scalar_when_hooks_exist(self):
        from repro.core.spmv import select_kernel

        block = self._block()
        program = SemiringProgram(PLUS_TIMES)
        spec = program.message_spec
        # n_active == 0 estimates zero edges: scalar kernel territory
        # (run_block never calls the selector for an empty frontier, but
        # the selector itself must stay total).
        kernel = select_kernel(block, 0, program, spec, program.result_spec)
        assert kernel == "scalar"

    def test_exact_full_coverage_is_dense(self):
        from repro.core.spmv import select_kernel

        block = self._block()
        program = SemiringProgram(PLUS_TIMES)
        kernel = select_kernel(
            block, block.nzc, program, program.message_spec,
            program.result_spec,
        )
        assert kernel == "dense-pull"

    def test_object_specs_never_scalar_or_dense(self):
        from repro.core.spmv import select_kernel
        from repro.vector.sparse_vector import OBJECT

        block = self._block()

        class ObjectProgram(SemiringProgram):
            message_spec = OBJECT
            result_spec = OBJECT

            def __init__(self):
                super().__init__(PLUS_TIMES)

        program = ObjectProgram()
        # Tiny frontier would be scalar for numeric specs; object specs
        # must take sparse-gather (no scalar fast path, no masked pull).
        kernel = select_kernel(block, 1, program, OBJECT, OBJECT)
        assert kernel == "sparse-gather"

    def test_batch_only_program_never_scalar(self):
        from repro.core.graph_program import GraphProgram
        from repro.core.spmv import select_kernel
        from repro.vector.sparse_vector import FLOAT64

        class BatchOnly(GraphProgram):
            message_spec = result_spec = property_spec = FLOAT64
            reduce_ufunc = np.add

            def send_message_batch(self, props, vertices):
                return props

            def process_message_batch(self, messages, edge_values, dst_props):
                return messages

            def apply_batch(self, reduced, props):
                return reduced

        block = self._block()
        program = BatchOnly()
        kernel = select_kernel(block, 1, program, FLOAT64, FLOAT64)
        assert kernel == "sparse-gather"

    def test_thresholds_from_options_change_selection(self):
        from repro.core.spmv import KernelThresholds, select_kernel

        block = self._block()
        program = SemiringProgram(MIN_PLUS)  # has a reduce identity
        spec = program.message_spec
        # Default crossover (2.0): 2 of 3 columns -> dense-pull.
        assert (
            select_kernel(block, 2, program, spec, spec) == "dense-pull"
        )
        # Crossover 1.0 demands full coverage: 2 of 3 stays sparse.
        tight = KernelThresholds(scalar_max_edges=0, dense_crossover=1.0)
        assert (
            select_kernel(block, 2, program, spec, spec, tight)
            == "sparse-gather"
        )
        # A huge scalar budget routes everything with scalar hooks there.
        lavish = KernelThresholds(scalar_max_edges=10_000)
        assert (
            select_kernel(block, 2, program, spec, spec, lavish) == "scalar"
        )

    def test_options_expose_thresholds(self):
        from repro.core.spmv import KernelThresholds

        options = EngineOptions(
            scalar_kernel_max_edges=7, dense_pull_crossover=3.5
        )
        thresholds = KernelThresholds.from_options(options)
        assert thresholds.scalar_max_edges == 7
        assert thresholds.dense_crossover == 3.5
        with pytest.raises(Exception):
            EngineOptions(scalar_kernel_max_edges=-1)
        with pytest.raises(Exception):
            EngineOptions(dense_pull_crossover=0.0)

    def test_custom_thresholds_drive_engine_runs(self):
        """An engine run with a zero scalar budget must never pick the
        scalar kernel, and results must be unchanged."""
        from repro.algorithms.bfs import run_bfs
        from repro.graph.generators.rmat import rmat_graph
        from repro.graph.preprocess import symmetrize

        graph = symmetrize(rmat_graph(scale=7, edge_factor=8, seed=2))
        ref = run_bfs(graph, 0)
        no_scalar = run_bfs(
            graph, 0, options=EngineOptions(scalar_kernel_max_edges=0)
        )
        assert np.array_equal(ref.distances, no_scalar.distances)
        assert "scalar" not in no_scalar.stats.kernel_totals()
        assert "scalar" in ref.stats.kernel_totals()

    def test_frontier_density_recorded(self):
        from repro.algorithms.bfs import run_bfs
        from repro.graph.generators.rmat import rmat_graph
        from repro.graph.preprocess import symmetrize

        graph = symmetrize(rmat_graph(scale=7, edge_factor=8, seed=2))
        stats = run_bfs(graph, 0).stats
        densities = [it.frontier_density for it in stats.iterations]
        assert densities[0] == 1.0 / graph.n_vertices
        assert max(densities) > densities[0]
        assert all(0.0 <= d <= 1.0 for d in densities)


class TestScalarProbeCounters:
    """Regression: membership probes are charged only when performed."""

    def _blocks(self):
        coo = COOMatrix(
            (6, 6),
            np.array([0, 1, 2, 3]),
            np.array([1, 2, 3, 4]),
            np.array([1.0, 1.0, 1.0, 1.0]),
        )
        return PartitionedMatrix.from_coo(coo, 1)

    def test_empty_frontier_charges_zero_probes(self):
        from repro.perf.counters import EventCounters

        blocks = self._blocks()
        program = SemiringProgram(PLUS_TIMES)
        properties = PropertyArray(6, FLOAT64)
        x = SortedTuplesVector(6)
        y = SortedTuplesVector(6)
        counters = EventCounters()
        edges = spmv_scalar(blocks, x, y, program, properties, counters)
        assert edges == 0
        assert counters.random_accesses == 0
        assert counters.user_calls == 0

    def test_nonempty_frontier_charges_tested_columns(self):
        from repro.perf.counters import EventCounters

        blocks = self._blocks()
        program = SemiringProgram(PLUS_TIMES)
        properties = PropertyArray(6, FLOAT64)
        x = SortedTuplesVector(6)
        y = SortedTuplesVector(6)
        x.set(1, 2.0)
        counters = EventCounters()
        edges = spmv_scalar(blocks, x, y, program, properties, counters)
        assert edges == 1
        nzc = sum(b.nzc for b in blocks)
        # 2 random accesses per edge + one probe per tested column.
        assert counters.random_accesses == 2 * edges + nzc
