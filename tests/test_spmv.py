"""Generalized SpMV tests: all code paths agree with scipy reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.graph_program import EdgeDirection, SemiringProgram
from repro.core.options import EngineOptions
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.core.spmv import PartitionWork, spmv_fused, spmv_scalar
from repro.graph.graph import Graph
from repro.matrix.coo import COOMatrix
from repro.matrix.partition import PartitionedMatrix
from repro.vector.dense import PropertyArray
from repro.vector.sparse_vector import (
    FLOAT64,
    BitvectorVector,
    SortedTuplesVector,
)

from tests.test_matrix_formats import coo_matrices


def reference_spmv_plus_times(coo: COOMatrix, x_dense: np.ndarray) -> np.ndarray:
    """y = M x over (+, *) using scipy, for square matrices."""
    return coo.to_scipy().tocsr() @ x_dense


def _run_spmv(coo, x_idx, x_vals, semiring, *, fused, n_parts=2):
    """Drive one SpMV call directly (bypassing the engine loop)."""
    n = coo.shape[0]
    blocks = PartitionedMatrix.from_coo(coo, n_parts)
    program = SemiringProgram(semiring)
    properties = PropertyArray(n, FLOAT64)
    if fused:
        x = BitvectorVector(n)
        y = BitvectorVector(n)
    else:
        x = SortedTuplesVector(n)
        y = SortedTuplesVector(n)
    for i, v in zip(x_idx, x_vals):
        x.set(int(i), float(v))
    work: list[PartitionWork] = []
    if fused:
        edges = spmv_fused(blocks, x, y, program, properties, None, work)
    else:
        edges = spmv_scalar(blocks, x, y, program, properties, None, work)
    return y, edges, work


class TestAgainstScipy:
    def test_dense_input_plus_times(self):
        coo = COOMatrix(
            (4, 4),
            np.array([0, 1, 2, 3, 1]),
            np.array([1, 2, 3, 0, 0]),
            np.array([2.0, 3.0, 4.0, 5.0, 7.0]),
        )
        x_dense = np.array([1.0, 2.0, 3.0, 4.0])
        expected = reference_spmv_plus_times(coo, x_dense)
        for fused in (False, True):
            y, edges, _ = _run_spmv(
                coo, np.arange(4), x_dense, PLUS_TIMES, fused=fused
            )
            assert edges == coo.nnz
            got = y.to_dense(fill=0.0)
            assert np.allclose(got, expected)

    def test_sparse_input_only_touches_active_columns(self):
        coo = COOMatrix(
            (4, 4),
            np.array([1, 2, 3]),
            np.array([0, 0, 2]),
            np.array([1.0, 2.0, 3.0]),
        )
        # Only column 0 active: edges from column 2 must not fire.
        y, edges, _ = _run_spmv(
            coo, np.array([0]), np.array([10.0]), PLUS_TIMES, fused=True
        )
        assert edges == 2
        assert sorted(y.indices().tolist()) == [1, 2]

    def test_min_plus(self):
        coo = COOMatrix(
            (3, 3),
            np.array([1, 2, 2]),
            np.array([0, 0, 1]),
            np.array([5.0, 1.0, 10.0]),
        )
        for fused in (False, True):
            y, _, _ = _run_spmv(
                coo,
                np.array([0, 1]),
                np.array([0.0, 2.0]),
                MIN_PLUS,
                fused=fused,
            )
            assert y.get(1) == 5.0
            assert y.get(2) == 1.0  # min(0+1, 2+10)


class TestPartitionWork:
    def test_work_sums_to_edges(self):
        coo = COOMatrix(
            (6, 6),
            np.array([0, 1, 2, 3, 4, 5]),
            np.array([1, 2, 3, 4, 5, 0]),
        )
        y, edges, work = _run_spmv(
            coo,
            np.arange(6),
            np.ones(6),
            PLUS_TIMES,
            fused=True,
            n_parts=3,
        )
        assert sum(w.edges for w in work) == edges == coo.nnz
        assert len(work) == 3
        assert all(w.seconds >= 0 for w in work)


@given(coo=coo_matrices(max_dim=15, max_nnz=60), data=st.data())
@settings(max_examples=50, deadline=None)
def test_all_paths_match_scipy_on_square_matrices(coo, data):
    if coo.shape[0] != coo.shape[1]:
        n = max(coo.shape)
        coo = COOMatrix((n, n), coo.rows, coo.cols, coo.vals)
    coo = coo.deduplicated("last")
    n = coo.shape[0]
    active = data.draw(
        st.lists(st.integers(0, n - 1), max_size=n, unique=True)
    )
    x_dense = np.zeros(n)
    for i in active:
        x_dense[i] = data.draw(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False)
        )
    full = coo.to_scipy().tocsr() @ x_dense
    # Expected: only rows fed by at least one active column have entries.
    expected_mask = np.zeros(n, dtype=bool)
    active_set = set(active)
    for k in range(coo.nnz):
        if int(coo.cols[k]) in active_set:
            expected_mask[coo.rows[k]] = True
    results = {}
    for fused in (False, True):
        y, _, _ = _run_spmv(
            coo,
            np.asarray(active, dtype=np.int64),
            x_dense[np.asarray(active, dtype=np.int64)]
            if active
            else np.zeros(0),
            PLUS_TIMES,
            fused=fused,
            n_parts=data.draw(st.integers(1, 4)),
        )
        got_mask = np.zeros(n, dtype=bool)
        got_mask[y.indices()] = True
        assert np.array_equal(got_mask, expected_mask)
        dense = y.to_dense(fill=0.0)
        assert np.allclose(dense[expected_mask], full[expected_mask])
        results[fused] = dense
    assert np.allclose(results[False], results[True])


class TestEngineOptionValidation:
    def test_bad_thread_count(self):
        with pytest.raises(Exception):
            EngineOptions(n_threads=0)

    def test_bad_strategy(self):
        with pytest.raises(Exception):
            EngineOptions(partition_strategy="zigzag")

    def test_bad_max_iterations(self):
        with pytest.raises(Exception):
            EngineOptions(max_iterations=0)
        with pytest.raises(Exception):
            EngineOptions(max_iterations=-2)

    def test_n_partitions_math(self):
        assert EngineOptions(n_threads=4, partitions_per_thread=8).n_partitions == 32
        assert (
            EngineOptions(n_threads=4, dynamic_schedule=False).n_partitions == 4
        )

    def test_with_updates(self):
        options = EngineOptions().with_(n_threads=4)
        assert options.n_threads == 4
        assert EngineOptions().n_threads == 1
