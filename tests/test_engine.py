"""Engine tests: Algorithm 2 semantics on every code path."""

import numpy as np
import pytest

from repro.core.engine import Workspace, graph_program_init, run_graph_program
from repro.core.graph_program import EdgeDirection, GraphProgram, SemiringProgram
from repro.core.options import ABLATION_LADDER, EngineOptions
from repro.core.semiring import MIN_FIRST, PLUS_FIRST, PLUS_TIMES
from repro.errors import ConvergenceError, ProgramError
from repro.graph.builder import build_graph
from repro.graph.generators import cycle_graph, figure1_graph, figure3_graph
from repro.vector.sparse_vector import FLOAT64

ALL_PATHS = [
    EngineOptions(use_bitvector=False, fused=False),
    EngineOptions(use_bitvector=True, fused=False),
    EngineOptions(use_bitvector=True, fused=True),
]
PATH_IDS = ["naive", "bitvector", "fused"]


def run_indegree(graph, options):
    program = SemiringProgram(PLUS_TIMES, EdgeDirection.OUT_EDGES)
    graph.init_properties(FLOAT64, 1.0)
    graph.set_all_active()
    stats = run_graph_program(graph, program, options.with_(max_iterations=1))
    return graph.vertex_properties.data.copy(), stats


class MinApplyProgram(SemiringProgram):
    """Min-label propagation: apply keeps the minimum (monotone, quiesces)."""

    def apply(self, reduced, vertex_prop):
        return min(reduced, vertex_prop)

    def apply_batch(self, reduced, props):
        return np.minimum(reduced, props)


@pytest.mark.parametrize("options", ALL_PATHS, ids=PATH_IDS)
class TestPaths:
    def test_figure1_indegree(self, options):
        graph = figure1_graph()
        degrees, _ = run_indegree(graph, options)
        assert degrees.tolist() == [1.0, 1.0, 2.0, 2.0]

    def test_in_edges_direction_gives_outdegree(self, options):
        graph = figure1_graph()
        program = SemiringProgram(PLUS_TIMES, EdgeDirection.IN_EDGES)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_active()
        run_graph_program(graph, program, options.with_(max_iterations=1))
        # Vertices with no in-edges under this direction keep init value 1;
        # A has out-degree 3, B 1, C 1, D 1.
        assert graph.vertex_properties.data.tolist() == [3.0, 1.0, 1.0, 1.0]

    def test_all_edges_direction_sums_both(self, options):
        graph = build_graph([(0, 1)], n_vertices=2)
        program = SemiringProgram(PLUS_FIRST, EdgeDirection.ALL_EDGES)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_active()
        run_graph_program(graph, program, options.with_(max_iterations=1))
        # Each vertex hears the other once.
        assert graph.vertex_properties.data.tolist() == [1.0, 1.0]

    def test_quiescence_terminates(self, options):
        # Min-label propagation on a cycle settles in <= n steps.
        graph = cycle_graph(6)
        program = MinApplyProgram(MIN_FIRST, EdgeDirection.OUT_EDGES)
        graph.init_properties(FLOAT64)
        graph.vertex_properties.data[:] = np.arange(6, dtype=np.float64)
        graph.set_all_active()
        stats = run_graph_program(
            graph, program, options.with_(max_iterations=-1)
        )
        assert stats.converged
        assert np.all(graph.vertex_properties.data == 0.0)

    def test_max_iterations_respected(self, options):
        graph = cycle_graph(20)
        program = MinApplyProgram(MIN_FIRST, EdgeDirection.OUT_EDGES)
        graph.init_properties(FLOAT64)
        graph.vertex_properties.data[:] = np.arange(20, dtype=np.float64)
        graph.set_all_active()
        stats = run_graph_program(
            graph, program, options.with_(max_iterations=3)
        )
        assert stats.n_supersteps == 3
        assert not stats.converged

    def test_inactive_graph_runs_zero_supersteps(self, options):
        graph = figure1_graph()
        program = SemiringProgram(PLUS_TIMES)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_inactive()
        stats = run_graph_program(graph, program, options)
        assert stats.n_supersteps == 0
        assert stats.converged

    def test_iteration_stats_recorded(self, options):
        graph = figure1_graph()
        _, stats = run_indegree(graph, options)
        assert stats.n_supersteps == 1
        it = stats.iterations[0]
        assert it.active_before == 4
        assert it.messages_sent == 4
        assert it.edges_processed == graph.n_edges
        assert it.vertices_updated == 4
        assert stats.total_edges_processed == graph.n_edges
        assert stats.seconds_per_iteration() > 0


class TestActivityRule:
    def test_only_changed_vertices_activate(self):
        # Min propagation: once a vertex holds the min, it stops changing.
        graph = figure3_graph()
        program = MinApplyProgram(MIN_FIRST, EdgeDirection.OUT_EDGES)
        graph.init_properties(FLOAT64)
        graph.vertex_properties.data[:] = np.arange(5, dtype=np.float64)
        graph.set_all_active()
        options = EngineOptions(max_iterations=1)
        run_graph_program(graph, program, options)
        # Vertices that adopted a smaller label are the active ones.
        assert graph.active_count < graph.n_vertices

    def test_reactivate_all_flag(self):
        class AlwaysOn(SemiringProgram):
            reactivate_all = True

        graph = figure1_graph()
        program = AlwaysOn(PLUS_TIMES)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_active()
        run_graph_program(graph, program, EngineOptions(max_iterations=1))
        assert graph.active_count == graph.n_vertices


class TestGuards:
    def test_safety_cap_raises(self):
        class Oscillator(GraphProgram):
            """Flips vertex state forever (never quiesces)."""

            reduce_ufunc = np.add

            def send_message(self, vertex_prop):
                return 1.0

            def process_message(self, message, edge_value, dst_prop):
                return message

            def reduce(self, a, b):
                return a + b

            def apply(self, reduced, vertex_prop):
                return -vertex_prop

        graph = cycle_graph(4)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_active()
        with pytest.raises(ConvergenceError):
            run_graph_program(
                graph, Oscillator(), EngineOptions(), safety_cap=10
            )

    def test_invalid_program_declaration(self):
        class Broken(SemiringProgram):
            pass

        program = Broken(PLUS_TIMES)
        program.direction = "out"  # not an EdgeDirection
        graph = figure1_graph()
        with pytest.raises(ProgramError):
            run_graph_program(graph, program, EngineOptions())

    def test_workspace_graph_mismatch(self):
        g1, g2 = figure1_graph(), figure1_graph()
        program = SemiringProgram(PLUS_TIMES)
        ws = graph_program_init(g1, program)
        assert isinstance(ws, Workspace)
        g2.init_properties(FLOAT64, 1.0)
        g2.set_all_active()
        with pytest.raises(ProgramError):
            run_graph_program(g2, program, EngineOptions(), workspace=ws)

    def test_workspace_reuse_works(self):
        graph = figure1_graph()
        program = SemiringProgram(PLUS_TIMES)
        ws = graph_program_init(graph, program)
        graph.init_properties(FLOAT64, 1.0)
        graph.set_all_active()
        stats = run_graph_program(
            graph, program, EngineOptions(max_iterations=1), workspace=ws
        )
        assert stats.n_supersteps == 1
        assert graph.vertex_properties.data.tolist() == [1.0, 1.0, 2.0, 2.0]


class TestAblationLadder:
    def test_ladder_order(self):
        names = [name for name, _ in ABLATION_LADDER]
        assert names == [
            "naive",
            "+bitvector",
            "+ipo",
            "+parallel",
            "+load balance",
        ]

    @pytest.mark.parametrize("name,options", ABLATION_LADDER)
    def test_every_rung_computes_same_answer(self, name, options):
        graph = figure3_graph()
        from repro.algorithms import run_sssp

        result = run_sssp(graph, 0, options=options)
        assert result.distances.tolist() == [0.0, 1.0, 2.0, 2.0, 4.0]


class TestPartitionedExecution:
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 7])
    def test_partitions_do_not_change_results(self, n_parts):
        graph = figure3_graph()
        from repro.algorithms import run_sssp

        options = EngineOptions(
            n_threads=1,
            partitions_per_thread=n_parts,
            dynamic_schedule=True,
            record_partition_stats=True,
        )
        result = run_sssp(graph, 0, options=options)
        assert result.distances.tolist() == [0.0, 1.0, 2.0, 2.0, 4.0]
        # Partition work recorded for every superstep.
        assert all(it.partition_work for it in result.stats.iterations)

    def test_partition_strategies_agree(self):
        from repro.algorithms import run_pagerank
        from repro.graph.generators import rmat_graph

        ranks = {}
        for strategy in ("rows", "nnz"):
            graph = rmat_graph(7, 8, seed=1)
            options = EngineOptions(
                partitions_per_thread=4, partition_strategy=strategy
            )
            ranks[strategy] = run_pagerank(
                graph, max_iterations=5, options=options
            ).ranks
        assert np.allclose(ranks["rows"], ranks["nnz"])


class TestStatsSerialization:
    """RunStats / IterationStats / BatchRun expose JSON-ready to_dict():
    the /stats endpoint and the serving load generator consume these, so
    dataclass internals (and numpy scalar types) must never leak."""

    def _run_stats(self):
        from repro.algorithms import run_pagerank
        from repro.graph.generators import rmat_graph

        graph = rmat_graph(6, 8, seed=2)
        options = EngineOptions(
            record_partition_stats=True, partitions_per_thread=2
        )
        return run_pagerank(graph, max_iterations=3, options=options).stats

    def test_run_stats_round_trips_through_json(self):
        import json

        stats = self._run_stats()
        doc = json.loads(json.dumps(stats.to_dict()))
        assert doc["n_supersteps"] == stats.n_supersteps == 3
        assert doc["total_edges_processed"] == stats.total_edges_processed
        assert doc["total_messages"] == stats.total_messages
        assert doc["backend"] == stats.backend
        assert len(doc["iterations"]) == 3
        first = doc["iterations"][0]
        assert first["iteration"] == 0
        assert first["messages_sent"] == stats.iterations[0].messages_sent
        assert all(
            isinstance(v, int) for v in first["kernel_counts"].values()
        )
        # Partition work rides along when recorded.
        assert first["partition_work"]
        assert {"partition", "edges", "kernel"} <= set(
            first["partition_work"][0]
        )
        compact = stats.to_dict(include_iterations=False)
        assert "iterations" not in compact
        json.dumps(compact)

    def test_batch_run_to_dict_excludes_properties(self):
        import json

        from repro.algorithms import bfs_multi_source
        from repro.graph.generators import rmat_graph
        from repro.graph.preprocess import symmetrize

        graph = symmetrize(rmat_graph(6, 8, seed=2))
        batched = bfs_multi_source(graph, [0, 1, 2])
        doc = json.loads(
            json.dumps(batched.run.to_dict(include_iterations=True))
        )
        assert doc["n_lanes"] == 3
        assert doc["converged"] is True
        assert "properties" not in doc
        assert len(doc["lane_stats"]) == 3
        assert doc["lane_stats"][0]["n_supersteps"] >= 1
        assert doc["n_supersteps"] == len(doc["iterations"])
        lean = batched.run.to_dict(include_lanes=False)
        assert "lane_stats" not in lean and "iterations" not in lean
        json.dumps(lean)
