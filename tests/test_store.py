"""Snapshot subsystem tests: container, round-trips, streaming ingest,
engine integration, the repro-convert CLI and the CI regression gate."""

from __future__ import annotations

import gzip
import importlib.util
import json
import pickle
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.pagerank import PageRankProgram, init_pagerank
from repro.core.engine import run_graph_program
from repro.core.options import EngineOptions
from repro.errors import IOFormatError
from repro.graph.builder import build_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.io import read_edge_list, read_mtx, write_edge_list
from repro.matrix.ops import matrices_equal
from repro.store import (
    ALIGNMENT,
    SnapshotReader,
    SnapshotWriter,
    close_snapshots,
    ingest_edge_list,
    ingest_file,
    ingest_mtx,
    load_snapshot,
    load_views,
    read_document,
    save_snapshot,
    save_views,
    sniff_format,
)
from repro.store.cli import main as cli_main

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _pagerank(graph, iterations=4):
    program = PageRankProgram()
    init_pagerank(graph, program)
    run_graph_program(graph, program, EngineOptions(max_iterations=iterations))
    return graph.vertex_properties.data.copy()


# ----------------------------------------------------------------------
# Container layer
# ----------------------------------------------------------------------
class TestContainer:
    def test_array_roundtrip_and_alignment(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        a = np.arange(17, dtype=np.int64)
        b = np.linspace(0, 1, 9)
        with SnapshotWriter(path) as writer:
            writer.add_array("a", a)
            writer.add_array("b", b)
            stream = writer.stream("s", np.int32)
            stream.append(np.arange(5, dtype=np.int32))
            stream.append(np.arange(5, 11, dtype=np.int32))
            writer.close({"hello": 1})
        reader = SnapshotReader(path)
        assert np.array_equal(reader.array("a"), a)
        assert np.array_equal(reader.array("b"), b)
        assert np.array_equal(reader.array("s"), np.arange(11, dtype=np.int32))
        assert reader.document == {"hello": 1}
        for entry in reader.arrays_index.values():
            assert entry["offset"] % ALIGNMENT == 0
        reader.verify()

    def test_mmap_views_share_file_memory(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        with SnapshotWriter(path) as writer:
            writer.add_array("a", np.arange(1000, dtype=np.int64))
            writer.close({})
        view = SnapshotReader(path, mmap=True).array("a")
        assert view.base is not None  # a view, not a copy
        assert not view.flags.writeable

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        with SnapshotWriter(path) as writer:
            writer.add_array("a", np.arange(64, dtype=np.int64))
            writer.close({})
        reader = SnapshotReader(path, mmap=False)
        offset = reader.arrays_index["a"]["offset"]
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(IOFormatError, match="checksum"):
            SnapshotReader(path, mmap=False).verify()

    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "junk.gmsnap"
        path.write_bytes(b"definitely not a snapshot, but long enough")
        with pytest.raises(IOFormatError):
            SnapshotReader(path)

    def test_duplicate_and_missing_names(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        with SnapshotWriter(path) as writer:
            writer.add_array("a", np.zeros(1))
            with pytest.raises(IOFormatError, match="duplicate"):
                writer.add_array("a", np.zeros(1))
            writer.close({})
        with pytest.raises(IOFormatError, match="no array"):
            SnapshotReader(path).array("nope")

    def test_aborted_write_leaves_nothing(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        with pytest.raises(RuntimeError):
            with SnapshotWriter(path) as writer:
                writer.add_array("a", np.zeros(4))
                raise RuntimeError("boom")
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_read_document_without_data(self, tmp_path):
        path = tmp_path / "c.gmsnap"
        with SnapshotWriter(path) as writer:
            writer.add_array("a", np.zeros(4))
            writer.close({"kind": "test"})
        assert read_document(path)["kind"] == "test"


# ----------------------------------------------------------------------
# Graph snapshots
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_graph_roundtrip(self, tmp_path, rmat_weighted, mmap):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_weighted, path, n_partitions=4, strategy="nnz")
        close_snapshots()
        loaded = load_snapshot(path, mmap=mmap)
        assert loaded.n_vertices == rmat_weighted.n_vertices
        assert loaded.n_edges == rmat_weighted.n_edges
        assert matrices_equal(loaded.edges, rmat_weighted.edges)
        view = loaded.peek_partitions("out", 4, "nnz")
        assert view is not None
        assert matrices_equal(
            view.to_coo(), rmat_weighted.out_partitions(4, "nnz").to_coo()
        )

    def test_both_directions(self, tmp_path, rmat_small):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_small, path, directions=("out", "in"))
        loaded = load_snapshot(path)
        assert loaded.peek_partitions("out", 8, "rows") is not None
        assert loaded.peek_partitions("in", 8, "rows") is not None

    def test_include_caches_preloads_kernel_caches(self, tmp_path, rmat_small):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_small, path, include_caches=True)
        loaded = load_snapshot(path)
        block = loaded.peek_partitions("out", 8, "rows").blocks[0]
        # Caches were installed from the file, not computed.
        assert block._col_expanded is not None
        assert block._dst_groups is not None
        reference = rmat_small.out_partitions(8, "rows").blocks[0]
        order, starts, rows = block.dst_groups()
        ref_order, ref_starts, ref_rows = reference.dst_groups()
        assert np.array_equal(order, ref_order)
        assert np.array_equal(starts, ref_starts)
        assert np.array_equal(rows, ref_rows)
        assert np.array_equal(block.col_expanded(), reference.col_expanded())

    def test_blocks_pickle_by_reference(self, tmp_path, rmat_small):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_small, path)
        view = load_snapshot(path).peek_partitions("out", 8, "rows")
        in_memory = rmat_small.out_partitions(8, "rows")
        for block, reference in zip(view.blocks, in_memory.blocks):
            payload = pickle.dumps(block)
            assert len(payload) < 512  # a path reference, not the arrays
            restored = pickle.loads(payload)
            assert matrices_equal(restored.to_coo(), reference.to_coo())
            assert restored.row_range == reference.row_range
        assert view.payload_nbytes() < in_memory.payload_nbytes()

    def test_views_snapshot_kind_guard(self, tmp_path, rmat_small):
        path = tmp_path / "v.gmsnap"
        pm = rmat_small.out_partitions(2, "rows")
        save_views(pm.shape, [("out", 2, "rows", pm)], path)
        with pytest.raises(IOFormatError, match="not a graph"):
            load_snapshot(path)
        direction, n_parts, strategy, loaded = load_views(path)[0]
        assert (direction, n_parts, strategy) == ("out", 2, "rows")
        assert matrices_equal(loaded.to_coo(), pm.to_coo())

    def test_resave_invalidates_reader_cache(self, tmp_path):
        path = tmp_path / "g.gmsnap"
        g1 = build_graph([(0, 1), (1, 2)])
        save_snapshot(g1, path)
        assert load_snapshot(path).n_edges == 2
        g2 = build_graph([(0, 1), (1, 2), (2, 0)])
        save_snapshot(g2, path)
        assert load_snapshot(path).n_edges == 3


# ----------------------------------------------------------------------
# Streaming ingest
# ----------------------------------------------------------------------
class TestIngest:
    def test_duplicates_keep_last(self, tmp_path):
        source = tmp_path / "edges.tsv"
        source.write_text("# header\n0 1 2.0\n1 2 3.0\n0 1 9.0\n")
        snap = tmp_path / "g.gmsnap"
        ingest_edge_list(source, snap, weighted=True, n_partitions=2)
        loaded = load_snapshot(snap)
        reference = read_edge_list(source, weighted=True)
        assert matrices_equal(loaded.edges, reference.edges)
        assert 9.0 in loaded.edges.vals.tolist()
        assert 2.0 not in loaded.edges.vals.tolist()

    def test_gzip_source(self, tmp_path):
        source = tmp_path / "edges.tsv.gz"
        with gzip.open(source, "wt") as handle:
            handle.write("0 1\n2 3\n1 0\n")
        snap = tmp_path / "g.gmsnap"
        report = ingest_edge_list(source, snap, n_partitions=2)
        assert report.n_edges == 3
        assert matrices_equal(load_snapshot(snap).edges, read_edge_list(source).edges)

    def test_explicit_vertex_count_and_bounds(self, tmp_path):
        source = tmp_path / "edges.tsv"
        source.write_text("0 1\n")
        snap = tmp_path / "g.gmsnap"
        report = ingest_edge_list(source, snap, n_vertices=10)
        assert report.n_vertices == 10
        assert load_snapshot(snap).n_vertices == 10
        source.write_text("0 99\n")
        with pytest.raises(IOFormatError, match="outside"):
            ingest_edge_list(source, snap, n_vertices=10)

    def test_short_line_rejected(self, tmp_path):
        source = tmp_path / "edges.tsv"
        source.write_text("0 1\n2\n")
        with pytest.raises(IOFormatError, match="expected 2 tokens"):
            ingest_edge_list(source, tmp_path / "g.gmsnap")

    def test_empty_input(self, tmp_path):
        source = tmp_path / "edges.tsv"
        source.write_text("# nothing\n")
        report = ingest_edge_list(source, tmp_path / "g.gmsnap")
        assert report.n_vertices == 0
        assert report.n_edges == 0
        assert load_snapshot(tmp_path / "g.gmsnap").n_vertices == 0

    def test_more_partitions_than_vertices(self, tmp_path):
        source = tmp_path / "edges.tsv"
        source.write_text("0 1\n1 0\n")
        report = ingest_edge_list(source, tmp_path / "g.gmsnap", n_partitions=16)
        assert report.n_partitions == 2  # clamped like PartitionedMatrix
        loaded = load_snapshot(tmp_path / "g.gmsnap")
        assert matrices_equal(loaded.edges, read_edge_list(source).edges)

    def test_nnz_strategy_matches_in_memory(self, tmp_path, rmat_small):
        source = tmp_path / "rmat.tsv"
        write_edge_list(rmat_small, source, weighted=False)
        snap = tmp_path / "g.gmsnap"
        ingest_edge_list(
            source, snap, n_partitions=4, strategy="nnz", chunk_edges=64
        )
        loaded = load_snapshot(snap)
        reference = read_edge_list(source)
        view = loaded.peek_partitions("out", 4, "nnz")
        ref_view = reference.out_partitions(4, "nnz")
        assert view.row_ranges() == ref_view.row_ranges()
        assert matrices_equal(view.to_coo(), ref_view.to_coo())

    def test_mtx_symmetric_integer(self, tmp_path):
        source = tmp_path / "g.mtx"
        source.write_text(
            "%%MatrixMarket matrix coordinate integer symmetric\n"
            "% comment\n"
            "4 4 3\n"
            "2 1 5\n"
            "3 2 7\n"
            "4 4 1\n"
        )
        snap = tmp_path / "g.gmsnap"
        ingest_mtx(source, snap, n_partitions=3)
        loaded = load_snapshot(snap)
        reference = read_mtx(source)
        assert matrices_equal(loaded.edges, reference.edges)
        assert loaded.edges.vals.dtype == np.int64

    def test_mtx_pattern(self, tmp_path):
        source = tmp_path / "g.mtx"
        source.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 1\n"
        )
        snap = tmp_path / "g.gmsnap"
        ingest_mtx(source, snap)
        loaded = load_snapshot(snap)
        assert matrices_equal(loaded.edges, read_mtx(source).edges)

    def test_mtx_nnz_mismatch(self, tmp_path):
        source = tmp_path / "g.mtx"
        source.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n"
        )
        with pytest.raises(IOFormatError, match="nnz"):
            ingest_mtx(source, tmp_path / "g.gmsnap")

    def test_sniff_and_dispatch(self, tmp_path):
        mtx = tmp_path / "g.mtx"
        mtx.write_text(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 1.0\n"
        )
        edges = tmp_path / "g.tsv"
        edges.write_text("0 1\n")
        assert sniff_format(mtx) == "mtx"
        assert sniff_format(edges) == "edgelist"
        for source in (mtx, edges):
            report = ingest_file(source, tmp_path / "out.gmsnap")
            assert report.n_edges == 1

    def test_report_accounting(self, tmp_path, rmat_small):
        source = tmp_path / "rmat.tsv"
        write_edge_list(rmat_small, source, weighted=False)
        report = ingest_edge_list(
            source, tmp_path / "g.gmsnap", n_partitions=4, chunk_edges=100
        )
        assert report.chunks > 1
        assert 0 < report.peak_partition_edges <= report.n_edges_raw
        assert report.snapshot_bytes == (tmp_path / "g.gmsnap").stat().st_size
        assert report.total_seconds > 0


# ----------------------------------------------------------------------
# Hypothesis round-trips (the satellite's exactness contract)
# ----------------------------------------------------------------------
@st.composite
def edge_list_cases(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    m = draw(st.integers(min_value=0, max_value=40))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    weighted = draw(st.booleans())
    weights = (
        draw(
            st.lists(
                st.floats(
                    allow_nan=False, allow_infinity=False, min_value=-1e6,
                    max_value=1e6,
                ),
                min_size=m,
                max_size=m,
            )
        )
        if weighted
        else None
    )
    n_partitions = draw(st.integers(min_value=1, max_value=16))
    strategy = draw(st.sampled_from(["rows", "nnz"]))
    return n, pairs, weighted, weights, n_partitions, strategy


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=edge_list_cases())
def test_edge_list_snapshot_roundtrip_exact(case, tmp_path_factory):
    """edge list -> Graph -> snapshot -> mmap load -> to_coo is exact
    (weights, duplicate edges, empty partitions included)."""
    n, pairs, weighted, weights, n_partitions, strategy = case
    tmp = tmp_path_factory.mktemp("hyp")
    source = tmp / "edges.tsv"
    lines = []
    for k, (u, v) in enumerate(pairs):
        lines.append(f"{u} {v} {weights[k]:.17g}" if weighted else f"{u} {v}")
    source.write_text("\n".join(lines) + ("\n" if lines else ""))

    reference = read_edge_list(source, weighted=weighted, n_vertices=n)

    # Path 1: streaming ingest of the text file.
    snap_a = tmp / "ingest.gmsnap"
    ingest_edge_list(
        source,
        snap_a,
        weighted=weighted,
        n_vertices=n,
        n_partitions=n_partitions,
        strategy=strategy,
        chunk_edges=7,  # force multi-chunk paths
    )
    loaded_a = load_snapshot(snap_a)
    assert loaded_a.n_vertices == reference.n_vertices
    assert matrices_equal(loaded_a.edges, reference.edges)
    view = load_views(snap_a)[0][3]  # partition count may have been clamped
    assert matrices_equal(view.to_coo(), reference.edges.transpose())

    # Path 2: in-memory snapshot of the reference graph.
    snap_b = tmp / "memory.gmsnap"
    save_snapshot(
        reference, snap_b, n_partitions=n_partitions, strategy=strategy
    )
    loaded_b = load_snapshot(snap_b)
    assert matrices_equal(loaded_b.edges, reference.edges)
    assert np.array_equal(
        np.sort(loaded_b.edges.vals, kind="stable"),
        np.sort(reference.edges.vals, kind="stable"),
    )


@st.composite
def mtx_cases(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    m = draw(st.integers(min_value=0, max_value=30))
    entries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n),  # 1-indexed on disk
                st.integers(min_value=1, max_value=n),
                st.integers(min_value=-50, max_value=50),
            ),
            min_size=m,
            max_size=m,
        )
    )
    field = draw(st.sampled_from(["real", "integer", "pattern"]))
    symmetry = draw(st.sampled_from(["general", "symmetric"]))
    n_partitions = draw(st.integers(min_value=1, max_value=6))
    return n, entries, field, symmetry, n_partitions


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=mtx_cases())
def test_mtx_snapshot_roundtrip_exact(case, tmp_path_factory):
    """1-indexed MTX (all fields/symmetries) -> snapshot load is exact."""
    n, entries, field, symmetry, n_partitions = case
    tmp = tmp_path_factory.mktemp("hyp_mtx")
    source = tmp / "g.mtx"
    lines = [f"%%MatrixMarket matrix coordinate {field} {symmetry}"]
    lines.append(f"{n} {n} {len(entries)}")
    for u, v, w in entries:
        if field == "pattern":
            lines.append(f"{u} {v}")
        elif field == "integer":
            lines.append(f"{u} {v} {w}")
        else:
            lines.append(f"{u} {v} {w / 4:.17g}")
    source.write_text("\n".join(lines) + "\n")

    reference = read_mtx(source)
    snap = tmp / "g.gmsnap"
    ingest_mtx(source, snap, n_partitions=n_partitions, chunk_edges=5)
    loaded = load_snapshot(snap)
    assert loaded.n_vertices == reference.n_vertices
    assert loaded.edges.vals.dtype == reference.edges.vals.dtype
    assert matrices_equal(loaded.edges, reference.edges)


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_snapshot_graph_runs_identically(self, tmp_path, rmat_small):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_small, path, include_caches=True)
        expected = _pagerank(rmat_small)
        loaded = load_snapshot(path)
        assert np.array_equal(_pagerank(loaded), expected)

    def test_process_backend_attaches_by_path(self, tmp_path, rmat_small):
        path = tmp_path / "g.gmsnap"
        save_snapshot(rmat_small, path)
        expected = _pagerank(rmat_small)
        loaded = load_snapshot(path)
        program = PageRankProgram()
        init_pagerank(loaded, program)
        options = EngineOptions(backend="process", n_workers=2, max_iterations=4)
        stats = run_graph_program(loaded, program, options)
        assert stats.backend == "process"
        assert np.array_equal(loaded.vertex_properties.data, expected)

    def test_snapshot_cache_option(self, tmp_path):
        cache = tmp_path / "viewcache"
        options = EngineOptions(snapshot_cache=str(cache), max_iterations=4)
        edges = [(0, 1), (1, 2), (2, 0), (0, 2)]
        expected = _pagerank(build_graph(edges))  # plain run, no cache
        first = build_graph(edges)
        program = PageRankProgram()
        init_pagerank(first, program)
        run_graph_program(first, program, options)
        entries = list(cache.glob("*.gmsnap"))
        assert len(entries) == 1
        # A fresh graph with identical edges hits the same cache entry.
        second = build_graph(edges)
        program = PageRankProgram()
        init_pagerank(second, program)
        run_graph_program(second, program, options)
        assert list(cache.glob("*.gmsnap")) == entries
        view = second.peek_partitions("out", options.n_partitions, "rows")
        assert view is not None and view.snapshot_path is not None
        assert np.array_equal(second.vertex_properties.data, expected)

    def test_snapshot_cache_rejects_empty_string(self):
        from repro.errors import ProgramError

        with pytest.raises(ProgramError):
            EngineOptions(snapshot_cache="")

    def test_cached_partitions_concurrent_readers(self, tmp_path):
        """Populate-on-miss is race-free: many threads resolving the same
        cold view build and persist exactly once, and every thread gets
        the same adopted (snapshot-backed) object — the situation the
        multi-threaded query server puts this cache in."""
        import threading

        from repro.store.view_cache import cached_partitions

        graph = rmat_graph(8, 4, seed=13)
        cache = tmp_path / "viewcache"
        results: list = [None] * 16
        errors: list = []
        barrier = threading.Barrier(len(results))

        def resolve(slot: int) -> None:
            try:
                barrier.wait(timeout=30)  # maximize miss contention
                results[slot] = cached_partitions(graph, "out", 4, "rows", cache)
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=resolve, args=(slot,))
            for slot in range(len(results))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(view is results[0] for view in results)
        assert results[0].snapshot_path is not None
        assert len(list(cache.glob("*.gmsnap"))) == 1
        # The adopted view is what later engine runs resolve to.
        assert graph.peek_partitions("out", 4, "rows") is results[0]


# ----------------------------------------------------------------------
# repro-convert CLI
# ----------------------------------------------------------------------
class TestCLI:
    def test_convert_info_verify(self, tmp_path, capsys):
        source = tmp_path / "edges.tsv"
        source.write_text("0 1\n1 2\n2 0\n")
        snap = tmp_path / "g.gmsnap"
        assert cli_main(["convert", str(source), str(snap)]) == 0
        assert snap.exists()
        assert cli_main(["info", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "3 vertices" in out and "3 edges" in out
        assert cli_main(["verify", str(snap)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_info_json(self, tmp_path, capsys):
        source = tmp_path / "edges.tsv"
        source.write_text("0 1\n")
        snap = tmp_path / "g.gmsnap"
        cli_main(["convert", str(source), str(snap), "--partitions", "2"])
        capsys.readouterr()
        assert cli_main(["info", str(snap), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["kind"] == "graph"
        assert summary["views"][0]["direction"] == "out"

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        code = cli_main(
            ["convert", str(tmp_path / "nope.tsv"), str(tmp_path / "o.gmsnap")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# CI regression gate
# ----------------------------------------------------------------------
def _load_gate_module():
    spec = importlib.util.spec_from_file_location(
        "check_regression", BENCHMARKS_DIR / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return _load_gate_module()


def _backend_record(pr_iter_seconds=0.01, calibration=0.01, reduction=2.5):
    cell = lambda s: {"seconds_per_iteration": s, "seconds": s}  # noqa: E731
    return {
        "meta": {
            "benchmark": "bench_backends",
            "scale": 11,
            "edge_factor": 8,
            "pr_iterations": 3,
            "calibration_seconds": calibration,
        },
        "pagerank": {"serial": cell(pr_iter_seconds)},
        "bfs": {"serial": cell(pr_iter_seconds)},
        "allocations": {"reduction_factor": reduction},
    }


class TestRegressionGate:
    def test_pass_when_unchanged(self, gate):
        findings = gate.compare(_backend_record(), _backend_record())
        assert all(f["status"] == "ok" for f in findings)

    def test_fail_on_slowdown_beyond_tolerance(self, gate):
        findings = gate.compare(
            _backend_record(pr_iter_seconds=0.1), _backend_record()
        )
        failed = {f["metric"] for f in findings if f["status"] == "fail"}
        assert "pagerank.serial.seconds_per_iteration" in failed

    def test_noise_floor_forgives_tiny_timings(self, gate):
        # 4ms vs 1ms is a 4x "slowdown" but under the 5ms noise floor.
        findings = gate.compare(
            _backend_record(pr_iter_seconds=0.004),
            _backend_record(pr_iter_seconds=0.001),
        )
        assert all(f["status"] == "ok" for f in findings)

    def test_calibration_rescales_baseline(self, gate):
        # Host is 2x slower (calibration 0.02 vs 0.01): a 1.8x wall-time
        # increase on a 100ms metric is within budget once rescaled.
        current = _backend_record(pr_iter_seconds=0.18, calibration=0.02)
        baseline = _backend_record(pr_iter_seconds=0.10, calibration=0.01)
        findings = gate.compare(current, baseline)
        assert all(f["status"] == "ok" for f in findings)
        # Without the calibration difference the same pair fails.
        current["meta"]["calibration_seconds"] = 0.01
        findings = gate.compare(current, baseline)
        assert any(f["status"] == "fail" for f in findings)

    def test_ratio_floor_enforced(self, gate):
        current = _backend_record(reduction=0.9)
        baseline = _backend_record(reduction=0.9)
        findings = gate.compare(current, baseline)
        failed = {f["metric"] for f in findings if f["status"] == "fail"}
        assert "allocations.reduction_factor" in failed

    def test_config_mismatch_rejected(self, gate, tmp_path):
        current, baseline = _backend_record(), _backend_record()
        current["meta"]["scale"] = 16
        a, b = tmp_path / "cur.json", tmp_path / "base.json"
        a.write_text(json.dumps(current))
        b.write_text(json.dumps(baseline))
        with pytest.raises(ValueError, match="scale"):
            gate.check_pair(a, b)

    def test_cli_update_and_verdicts(self, gate, tmp_path, capsys):
        current = tmp_path / "cur.json"
        baseline = tmp_path / "base.json"
        current.write_text(json.dumps(_backend_record()))
        assert (
            gate.main(
                ["--current", str(current), "--baseline", str(baseline)]
            )
            == 2  # baseline missing
        )
        assert (
            gate.main(
                ["--current", str(current), "--baseline", str(baseline),
                 "--update"]
            )
            == 0
        )
        assert baseline.exists()
        assert (
            gate.main(["--current", str(current), "--baseline", str(baseline)])
            == 0
        )
        slow = _backend_record(pr_iter_seconds=0.5)
        current.write_text(json.dumps(slow))
        assert (
            gate.main(["--current", str(current), "--baseline", str(baseline)])
            == 1
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_committed_baselines_parse(self, gate):
        for name in (
            "BENCH_backends.json",
            "BENCH_ingest.json",
            "BENCH_batch.json",
            "BENCH_serve.json",
            "BENCH_governance.json",
        ):
            record = json.loads(
                (BENCHMARKS_DIR / "baselines" / name).read_text()
            )
            metrics = gate.extract_metrics(record)
            assert metrics, name
            assert record["meta"]["calibration_seconds"] > 0
