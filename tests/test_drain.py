"""Graceful degradation: drain ordering, readiness, durability acks.

The contract under test: once a drain begins, *new* work is refused
with a retriable 503 while every *admitted* request still completes —
``close()`` stops admission, drains the micro-batcher, then fsyncs the
delta logs, in that order.  The subprocess SIGTERM version (a real
signal into a real server under load) lives in
``tests/test_faults_harness.py``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.errors import (
    ReadOnlyServiceError,
    ServiceDrainingError,
)
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve import BatchPolicy, GraphRegistry, GraphService, make_server


@pytest.fixture(scope="module")
def sym():
    return symmetrize(rmat_graph(scale=7, edge_factor=8, seed=9))


def _service(sym, **kwargs) -> GraphService:
    registry = GraphRegistry()
    registry.add_graph("g", sym)
    kwargs.setdefault(
        "policy", BatchPolicy(max_batch_k=4, max_wait_ms=20.0)
    )
    return GraphService(registry, **kwargs)


class TestDrainOrdering:
    def test_inflight_queries_complete_through_close(self, sym):
        """Regression: queries admitted before close() must all resolve.

        The old close() shut the batcher down without first refusing new
        work, so a request racing the shutdown could be admitted by a
        scheduler already closing.  Now: admission off first, then the
        batcher drains everything it accepted.
        """
        service = _service(sym)
        results, errors = [], []
        started = threading.Barrier(9)

        def ask(root):
            started.wait()
            try:
                results.append(service.query("g", "bfs", {"root": root}))
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=ask, args=(root,)) for root in range(8)
        ]
        for thread in threads:
            thread.start()
        started.wait()  # all request threads are past the gate
        time.sleep(0.005)  # let them reach submit
        service.close()
        for thread in threads:
            thread.join(timeout=30.0)
        # Every admitted query resolved with a real result; late arrivals
        # (if any) failed with the *draining* refusal, nothing else.
        assert not [e for e in errors if not isinstance(e, ServiceDrainingError)]
        assert len(results) + len(errors) == 8
        for result in results:
            assert result.values.shape[0] == sym.n_vertices

    def test_draining_refuses_new_work_but_close_is_idempotent(self, sym):
        service = _service(sym)
        assert service.ready() == (True, "ok")
        service.begin_drain()
        assert service.draining
        assert service.ready() == (False, "draining")
        with pytest.raises(ServiceDrainingError):
            service.query("g", "bfs", {"root": 0})
        with pytest.raises(ServiceDrainingError):
            service.mutate("g", inserts=([0], [1]))
        service.close()
        service.close()  # idempotent

    def test_close_syncs_delta_logs(self, sym, tmp_path):
        service = _service(sym, delta_log_dir=tmp_path)
        service.mutate("g", inserts=([0, 1], [2, 3]))
        service.close()
        # After close the log is complete and strict-valid on disk.
        from repro.store.delta_log import DeltaLog

        batches = DeltaLog(tmp_path / "g.gmdelta").replay(strict=True)
        assert [b.epoch for b in batches] == [1]

    def test_http_liveness_readiness_split(self, sym):
        import json
        import urllib.error
        import urllib.request

        service = _service(sym)
        server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]

        def get(path):
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}{path}"
                ) as reply:
                    return reply.status, json.loads(reply.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        assert get("/healthz/live")[0] == 200
        assert get("/healthz/ready") == (200, {"status": "ready"})
        service.begin_drain()
        assert get("/healthz/live")[0] == 200  # still live while draining
        status, body = get("/healthz/ready")
        assert status == 503 and body["status"] == "draining"
        status, body = get("/healthz")
        assert status == 200 and body["draining"] is True
        server.shutdown()
        server.server_close()
        service.close()


class TestDurabilityAck:
    def test_default_ack_is_not_fsynced(self, sym, tmp_path):
        service = _service(sym, delta_log_dir=tmp_path)
        summary = service.mutate("g", inserts=([0], [1]))
        assert summary["durable"] is False
        service.close()

    def test_fsync_service_acks_durable(self, sym, tmp_path):
        service = _service(sym, delta_log_dir=tmp_path, fsync=True)
        assert service.stats()["fsync"] is True
        summary = service.mutate("g", inserts=([0], [1]))
        assert summary["durable"] is True
        # Per-mutation override in both directions.
        assert service.mutate("g", inserts=([1], [2]), durable=False)[
            "durable"
        ] is False
        service.close()

    def test_per_mutation_durable_override(self, sym, tmp_path):
        service = _service(sym, delta_log_dir=tmp_path)
        summary = service.mutate("g", inserts=([0], [1]), durable=True)
        assert summary["durable"] is True
        service.close()

    def test_memory_only_service_never_acks_durable(self, sym):
        service = _service(sym)
        summary = service.mutate("g", inserts=([0], [1]), durable=True)
        assert summary["durable"] is False  # there is no log to sync
        service.close()

    def test_read_only_service_rejects_mutations(self, sym):
        service = _service(sym, read_only=True)
        with pytest.raises(ReadOnlyServiceError):
            service.mutate("g", inserts=([0], [1]))
        # Reads still work.
        values = service.query("g", "bfs", {"root": 0}).values
        assert np.isfinite(values[0])
        service.close()
