"""In-process fault injection: crash-point semantics + torn-record recovery.

The ``raise`` action lets these tests "crash" a durability path by
unwinding the stack instead of the process, then inspect the on-disk
aftermath directly.  The honest SIGKILL versions of the same windows
live in ``tests/test_faults_harness.py`` (subprocess-based, ``-m
faults``).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.algorithms.bfs import run_bfs
from repro.dynamic import DeltaGraph
from repro.errors import IOFormatError, ReproError
from repro.faults import CRASH_POINTS, InjectedFault
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import symmetrize
from repro.serve import GraphRegistry, GraphService
from repro.store.delta_log import LOG_START, DeltaLog
from repro.store.format import SnapshotWriter
from repro.store.snapshot import save_snapshot


@pytest.fixture(autouse=True)
def disarm():
    """No test leaks armed crash points into the next one."""
    faults.deactivate()
    yield
    faults.deactivate()


@pytest.fixture()
def sym():
    return symmetrize(rmat_graph(scale=6, edge_factor=8, seed=11))


def _service(sym, tmp_path, **kwargs) -> GraphService:
    registry = GraphRegistry()
    registry.add_graph("g", sym)
    kwargs.setdefault("delta_log_dir", tmp_path)
    return GraphService(registry, **kwargs)


def _reference(sym, tmp_path: Path):
    """Independent replay of the surviving on-disk state (epoch, graph)."""
    compacted = sorted(
        (int(p.stem.rsplit("epoch", 1)[1]), p)
        for p in tmp_path.glob("g-epoch*.gmsnap")
    )
    if compacted:
        from repro.store.snapshot import load_snapshot

        epoch, path = compacted[-1]
        graph = load_snapshot(path)
    else:
        epoch, graph = 0, sym
    log = DeltaLog(tmp_path / "g.gmdelta")
    for batch in log.replay(strict=False):
        if batch.epoch <= epoch:
            continue
        graph = graph if isinstance(graph, DeltaGraph) else DeltaGraph(graph)
        graph = graph.apply_delta(batch.inserts(), batch.deletes())
        epoch = batch.epoch
    return epoch, graph


class TestRegistry:
    def test_parse_spec_roundtrip(self):
        spec = "delta_log.append.torn=kill, compact.after_snapshot=raise"
        assert faults.parse_spec(spec) == {
            "delta_log.append.torn": "kill",
            "compact.after_snapshot": "raise",
        }

    @pytest.mark.parametrize(
        "bad",
        ["nonsense", "unknown.point=kill", "delta_log.append.torn=explode"],
    )
    def test_parse_spec_rejects(self, bad):
        with pytest.raises(ReproError):
            faults.parse_spec(bad)

    def test_activate_deactivate(self):
        assert not faults.enabled()
        faults.activate("delta_log.append.before=raise")
        assert faults.enabled()
        assert faults.armed("delta_log.append.before")
        assert not faults.armed("delta_log.append.after")
        faults.deactivate()
        assert not faults.enabled()
        faults.crash_point("delta_log.append.before")  # disarmed: no-op

    def test_fire_once_disarms(self):
        faults.activate("serve.dispatch.before=raise")
        with pytest.raises(InjectedFault):
            faults.crash_point("serve.dispatch.before")
        # The recovery path re-entering the same code must not re-crash.
        faults.crash_point("serve.dispatch.before")
        assert not faults.enabled()

    def test_unarmed_point_is_untouched_while_others_fire(self):
        faults.activate("compact.before_snapshot=raise")
        faults.crash_point("delta_log.append.before")  # different point
        assert faults.enabled()

    def test_env_spec_loads(self, monkeypatch):
        monkeypatch.setenv(faults.SPEC_ENV, "delta_log.truncate.before=raise")
        faults._load_env()
        assert faults.armed("delta_log.truncate.before")

    def test_every_crash_point_is_wired(self):
        """CRASH_POINTS and the instrumented call sites stay in sync."""
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        text = "\n".join(
            p.read_text() for p in src.rglob("*.py") if p.name != "faults.py"
        )
        for point in CRASH_POINTS:
            assert f'"{point}"' in text, f"crash point {point!r} is not wired"


class TestTornRecords:
    def test_torn_append_recovers_committed_prefix(self, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        log.append(([0], [1]), epoch=1)
        log.append(([2], [3]), epoch=2)
        faults.activate("delta_log.append.torn=raise")
        with pytest.raises(InjectedFault):
            log.append(([4], [5]), epoch=3)
        # Strict replay refuses the torn tail; lenient replay returns
        # exactly the two committed batches.
        with pytest.raises(IOFormatError):
            log.replay(strict=True)
        assert [b.epoch for b in log.replay(strict=False)] == [1, 2]
        # Repair cuts the tail so new appends are reachable again.
        assert log.repair() > 0
        log.append(([4], [5]), epoch=3)
        assert [b.epoch for b in log.replay(strict=True)] == [1, 2, 3]

    def test_append_before_loses_nothing_written(self, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        log.append(([0], [1]), epoch=1)
        size = log.nbytes
        faults.activate("delta_log.append.before=raise")
        with pytest.raises(InjectedFault):
            log.append(([2], [3]), epoch=2)
        assert log.nbytes == size  # nothing reached the file
        assert [b.epoch for b in log.replay(strict=True)] == [1]

    def test_append_after_is_durable_but_unacked(self, tmp_path):
        log = DeltaLog(tmp_path / "g.gmdelta")
        faults.activate("delta_log.append.after=raise")
        with pytest.raises(InjectedFault):
            log.append(([0], [1]), epoch=1)
        # The record is whole on disk: recovery may replay it (at-least-
        # once for unacknowledged work is allowed; losing acked work is not).
        assert [b.epoch for b in log.replay(strict=True)] == [1]

    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[
            HealthCheck.function_scoped_fixture, HealthCheck.too_slow,
        ],
    )
    @given(cut=st.integers(min_value=0, max_value=400))
    def test_truncation_at_any_byte_recovers_a_prefix(self, tmp_path, cut):
        """SIGKILL can tear the tail at *any* byte, not just frame middles.

        Whatever survives, lenient replay must return exactly the
        batches whose frames are fully intact — a prefix, in order —
        and repair + append must produce a valid log again.
        """
        path = tmp_path / f"cut{cut}.gmdelta"
        path.unlink(missing_ok=True)
        log = DeltaLog(path)
        offsets = [log.append(([i], [i + 1]), epoch=i + 1) for i in range(4)]
        offsets.append(log.nbytes)
        data = path.read_bytes()
        point = min(LOG_START + cut, len(data))
        path.write_bytes(data[:point])
        survivors = [b.epoch for b in log.replay(strict=False)]
        # Exactly the batches whose whole frame fits before the cut.
        expected = sum(1 for end in offsets[1:] if end <= point)
        assert survivors == list(range(1, expected + 1))
        log.repair()
        log.append(([9], [9]), epoch=99)
        assert [b.epoch for b in log.replay(strict=True)][-1] == 99

    def test_snapshot_rename_crash_leaves_no_torn_file(self, sym, tmp_path):
        target = tmp_path / "g.gmsnap"
        save_snapshot(sym, target)
        before = target.read_bytes()
        faults.activate("snapshot.before_rename=raise")
        with pytest.raises(InjectedFault):
            save_snapshot(sym, target, meta={"attempt": 2})
        # The old snapshot is untouched and no .tmp litter remains.
        assert target.read_bytes() == before
        assert not list(tmp_path.glob("*.tmp"))

    def test_snapshot_writer_abort_path(self, tmp_path):
        target = tmp_path / "x.gmsnap"
        faults.activate("snapshot.before_rename=raise")
        with pytest.raises(InjectedFault):
            with SnapshotWriter(target) as writer:
                writer.add_array("a", np.arange(4))
                writer.close({"k": "v"})
        assert not target.exists()
        assert not list(tmp_path.glob("*.tmp"))


class TestServiceCrashWindows:
    """The compaction windows, crashed via ``raise`` and then recovered."""

    def _mutate_until_fault(self, service, rng, n=64):
        for _ in range(n):
            src = rng.integers(0, 60, 6).tolist()
            dst = rng.integers(0, 60, 6).tolist()
            try:
                service.mutate("g", inserts=(src, dst))
            except InjectedFault:
                return True
        return False

    @pytest.mark.parametrize(
        "point",
        [
            "compact.before_snapshot",
            "compact.after_snapshot",
            "delta_log.truncate.before",
            "snapshot.before_rename",
        ],
    )
    def test_compaction_crash_then_recover_bitwise(self, sym, tmp_path, point):
        service = _service(sym, tmp_path, compact_threshold=0.02)
        rng = np.random.default_rng(3)
        faults.activate({point: "raise"})
        assert self._mutate_until_fault(service, rng), "fault never fired"
        service.close()
        # Recovery: a fresh service over the same directory must land on
        # exactly the reference replay of the surviving durable state.
        ref_epoch, ref_graph = _reference(sym, tmp_path)
        recovered = _service(sym, tmp_path)
        entry = recovered.registry.entry("g")
        assert entry.epoch == ref_epoch
        got = recovered.query("g", "bfs", {"root": 0}).values
        want = run_bfs(ref_graph, 0).distances
        assert np.array_equal(got, want, equal_nan=True)
        recovered.close()

    def test_recovery_skips_batches_already_compacted(self, sym, tmp_path):
        """The crash-between-snapshot-and-truncate window double-counts
        nothing: logged batches at or below the snapshot epoch are not
        replayed into the overlay."""
        service = _service(sym, tmp_path, compact_threshold=0.02)
        rng = np.random.default_rng(4)
        faults.activate({"delta_log.truncate.before": "raise"})
        assert self._mutate_until_fault(service, rng)
        service.close()
        # The log still holds everything since the *previous* compaction,
        # including batches the new snapshot already folded in.
        snapshots = list(tmp_path.glob("g-epoch*.gmsnap"))
        assert snapshots, "compaction should have written its snapshot"
        recovered = _service(sym, tmp_path)
        entry = recovered.registry.entry("g")
        assert entry.epoch == _reference(sym, tmp_path)[0]
        # No overlay bloat from re-applied batches: delta edges only from
        # epochs above the snapshot.
        mutations = recovered.stats()["mutations"]
        assert mutations["generations"]["g"] > 0
        recovered.close()

    def test_torn_service_log_is_repaired_on_recovery(self, sym, tmp_path):
        service = _service(sym, tmp_path)
        service.mutate("g", inserts=([1], [2]))
        faults.activate("delta_log.append.torn=raise")
        with pytest.raises(InjectedFault):
            service.mutate("g", inserts=([3], [4]))
        service.close()
        recovered = _service(sym, tmp_path)
        assert recovered.stats()["mutations"]["torn_bytes_dropped"] > 0
        assert recovered.registry.entry("g").epoch == 1
        # The repaired tail accepts new appends and replay stays strict-valid.
        recovered.mutate("g", inserts=([5], [6]))
        log = DeltaLog(tmp_path / "g.gmdelta")
        assert [b.epoch for b in log.replay(strict=True)] == [1, 2]
        recovered.close()

    def test_dispatch_crash_resolves_futures(self, sym, tmp_path):
        """A raise at the dispatcher's crash point must not strand callers."""
        service = _service(sym, tmp_path)
        faults.activate("serve.dispatch.before=raise")
        with pytest.raises(InjectedFault):
            service.query("g", "bfs", {"root": 0}, timeout=10.0)
        # Fire-once: the very next query succeeds.
        result = service.query("g", "bfs", {"root": 0}, timeout=10.0)
        assert result.values.shape[0] == sym.n_vertices
        service.close()
