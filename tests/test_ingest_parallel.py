"""Parallel streaming ingest: byte-stability, degenerate inputs, cleanup.

The contract under test (see docs/FORMATS.md "Parallel ingest"): the
``.gmsnap`` a conversion writes is a pure function of the input file and
the conversion options — the worker count, chunk size, and gzip-vs-plain
transport must never change a single output byte.  Alongside that, the
ingest bugfix satellites: degenerate inputs produce valid loadable
snapshots, failures (injected crashes and malformed input alike) leave
no scratch directories or half-written snapshots behind, and the
per-pass counters aggregate across workers to the single-process totals.
"""

from __future__ import annotations

import filecmp
import gzip
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.algorithms.pagerank import run_pagerank
from repro.errors import IOFormatError
from repro.faults import InjectedFault
from repro.graph.io import read_edge_list, read_mtx
from repro.store import ingest_edge_list, ingest_file, ingest_mtx, load_snapshot
from repro.store.cli import main as cli_main
from repro.store.snapshot import open_snapshot


@pytest.fixture(autouse=True)
def disarm():
    """No test leaks armed crash points into the next one."""
    faults.deactivate()
    yield
    faults.deactivate()


def _write_edges(path: Path, n_vertices: int, n_edges: int, *, seed: int,
                 weighted: bool = False, comments: bool = True) -> Path:
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_vertices, size=n_edges)
    dst = rng.integers(0, n_vertices, size=n_edges)
    lines = []
    if comments:
        lines.append("# generated test graph")
    for k in range(n_edges):
        if weighted:
            lines.append(f"{src[k]} {dst[k]} {rng.random():.6f}")
        else:
            lines.append(f"{src[k]} {dst[k]}")
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def _write_mtx(path: Path, n_vertices: int, n_entries: int, *, seed: int,
               field: str = "real", symmetry: str = "general") -> Path:
    rng = np.random.default_rng(seed)
    rows = rng.integers(1, n_vertices + 1, size=n_entries)
    cols = rng.integers(1, n_vertices + 1, size=n_entries)
    if symmetry == "symmetric":  # store one triangle only
        rows, cols = np.maximum(rows, cols), np.minimum(rows, cols)
    lines = [
        f"%%MatrixMarket matrix coordinate {field} {symmetry}",
        "% generated test graph",
        f"{n_vertices} {n_vertices} {n_entries}",
    ]
    for k in range(n_entries):
        if field == "pattern":
            lines.append(f"{rows[k]} {cols[k]}")
        elif field == "integer":
            lines.append(f"{rows[k]} {cols[k]} {int(rng.integers(1, 9))}")
        else:
            lines.append(f"{rows[k]} {cols[k]} {rng.random():.6f}")
    path.write_text("\n".join(lines) + "\n")
    return path


def _no_scratch_left(temp_dir: Path) -> bool:
    return not list(temp_dir.glob("gm-ingest-*"))


# ---------------------------------------------------------------------------
# Byte-stability: the snapshot is a pure function of input + options.
# ---------------------------------------------------------------------------


class TestByteStability:
    @pytest.mark.parametrize("fmt", ["edgelist", "mtx"])
    @pytest.mark.parametrize("strategy", ["rows", "nnz"])
    def test_snapshot_bytes_independent_of_worker_count(
        self, tmp_path, fmt, strategy
    ):
        if fmt == "edgelist":
            source = _write_edges(tmp_path / "g.el", 80, 400, seed=3)
            ingest = ingest_edge_list
        else:
            source = _write_mtx(
                tmp_path / "g.mtx", 80, 400, seed=3, symmetry="symmetric"
            )
            ingest = ingest_mtx
        kwargs = dict(
            n_partitions=4, strategy=strategy, chunk_edges=37, temp_dir=tmp_path
        )
        reference = tmp_path / "w1.gmsnap"
        ingest(source, reference, workers=1, **kwargs)
        for workers in (2, 4):
            out = tmp_path / f"w{workers}.gmsnap"
            report = ingest(source, out, workers=workers, **kwargs)
            assert report.workers == workers
            assert filecmp.cmp(reference, out, shallow=False), (
                f"{workers}-worker snapshot differs from single-process bytes"
            )

    def test_snapshot_bytes_independent_of_chunk_size(self, tmp_path):
        source = _write_edges(tmp_path / "g.el", 60, 300, seed=5)
        reference = tmp_path / "ref.gmsnap"
        ingest_edge_list(
            source, reference, chunk_edges=7, workers=2, temp_dir=tmp_path
        )
        other = tmp_path / "other.gmsnap"
        ingest_edge_list(
            source, other, chunk_edges=300, workers=3, temp_dir=tmp_path
        )
        assert filecmp.cmp(reference, other, shallow=False)

    def test_gzip_and_plain_produce_identical_arrays(self, tmp_path):
        """Gzip forces stream-mode chunking (no random access); the only
        permitted difference from the offset-mode plain file is the
        recorded source path in the manifest."""
        plain = _write_edges(tmp_path / "g.el", 60, 300, seed=7)
        zipped = tmp_path / "g.el.gz"
        with gzip.open(zipped, "wb") as handle:
            handle.write(plain.read_bytes())
        plain_snap = tmp_path / "plain.gmsnap"
        gzip_snap = tmp_path / "gzip.gmsnap"
        ingest_edge_list(plain, plain_snap, chunk_edges=41, workers=2,
                         temp_dir=tmp_path)
        report = ingest_edge_list(zipped, gzip_snap, chunk_edges=41, workers=2,
                                  temp_dir=tmp_path)
        assert report.extra["chunk_mode"] == "stream"
        a, b = open_snapshot(plain_snap), open_snapshot(gzip_snap)
        assert set(a.arrays_index) == set(b.arrays_index)
        for name in a.arrays_index:
            assert np.array_equal(a.array(name), b.array(name)), name
        doc_a, doc_b = dict(a.document), dict(b.document)
        assert doc_a.pop("meta")["source"] != doc_b.pop("meta")["source"]
        assert doc_a == doc_b

    def test_pagerank_bitwise_parity_with_in_memory_reader(self, tmp_path):
        source = _write_edges(tmp_path / "g.el", 100, 600, seed=9)
        snap = tmp_path / "g.gmsnap"
        ingest_edge_list(source, snap, n_partitions=4, chunk_edges=53,
                         workers=3, temp_dir=tmp_path)
        reference = run_pagerank(read_edge_list(source), max_iterations=5)
        loaded = run_pagerank(load_snapshot(snap), max_iterations=5)
        assert np.array_equal(reference.ranks, loaded.ranks)

    def test_mtx_symmetric_parity_with_in_memory_reader(self, tmp_path):
        source = _write_mtx(tmp_path / "g.mtx", 50, 200, seed=11,
                            symmetry="symmetric")
        snap = tmp_path / "g.gmsnap"
        ingest_mtx(source, snap, n_partitions=3, chunk_edges=17, workers=2,
                   temp_dir=tmp_path)
        reference = run_pagerank(read_mtx(source), max_iterations=5)
        loaded = run_pagerank(load_snapshot(snap), max_iterations=5)
        assert np.array_equal(reference.ranks, loaded.ranks)

    @given(
        seed=st.integers(0, 2**16),
        n_vertices=st.integers(2, 40),
        n_edges=st.integers(0, 120),
        chunk_edges=st.integers(1, 50),
    )
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_property_parallel_equals_single(
        self, tmp_path, seed, n_vertices, n_edges, chunk_edges
    ):
        base = tmp_path / f"case-{seed}-{n_vertices}-{n_edges}-{chunk_edges}"
        base.mkdir(exist_ok=True)
        source = _write_edges(base / "g.el", n_vertices, n_edges, seed=seed)
        single = base / "w1.gmsnap"
        parallel = base / "w2.gmsnap"
        r1 = ingest_edge_list(source, single, n_partitions=3,
                              chunk_edges=chunk_edges, workers=1,
                              temp_dir=base)
        r2 = ingest_edge_list(source, parallel, n_partitions=3,
                              chunk_edges=chunk_edges, workers=2,
                              temp_dir=base)
        assert filecmp.cmp(single, parallel, shallow=False)
        assert (r1.n_edges, r1.n_edges_raw, r1.chunks) == (
            r2.n_edges, r2.n_edges_raw, r2.chunks
        )
        assert _no_scratch_left(base)


# ---------------------------------------------------------------------------
# Degenerate inputs must produce valid, loadable snapshots.
# ---------------------------------------------------------------------------


class TestDegenerateInputs:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_zero_edge_file(self, tmp_path, workers):
        source = tmp_path / "empty.el"
        source.write_text("")
        snap = tmp_path / f"empty-w{workers}.gmsnap"
        report = ingest_edge_list(source, snap, workers=workers,
                                  temp_dir=tmp_path)
        assert (report.n_edges, report.n_vertices) == (0, 0)
        graph = load_snapshot(snap, verify=True)
        assert (graph.n_vertices, graph.n_edges) == (0, 0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_zero_edge_with_declared_vertices(self, tmp_path, workers):
        source = tmp_path / "empty.el"
        source.write_text("# nothing but comments\n")
        snap = tmp_path / f"declared-w{workers}.gmsnap"
        report = ingest_edge_list(source, snap, n_vertices=10,
                                  workers=workers, temp_dir=tmp_path)
        assert (report.n_edges, report.n_vertices) == (0, 10)
        graph = load_snapshot(snap, verify=True)
        assert (graph.n_vertices, graph.n_edges) == (10, 0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_all_comment_mtx(self, tmp_path, workers):
        source = tmp_path / "empty.mtx"
        source.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% nothing stored\n"
            "6 6 0\n"
        )
        snap = tmp_path / f"mtx-w{workers}.gmsnap"
        report = ingest_mtx(source, snap, workers=workers, temp_dir=tmp_path)
        assert (report.n_edges, report.n_vertices) == (0, 6)
        graph = load_snapshot(snap, verify=True)
        assert (graph.n_vertices, graph.n_edges) == (6, 0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_vertex_self_loop(self, tmp_path, workers):
        source = tmp_path / "one.el"
        source.write_text("0 0\n")
        snap = tmp_path / f"one-w{workers}.gmsnap"
        report = ingest_edge_list(source, snap, n_partitions=8,
                                  workers=workers, temp_dir=tmp_path)
        assert (report.n_edges, report.n_vertices) == (1, 1)
        # Partition count clamps to the vertex count.
        assert report.n_partitions == 1
        graph = load_snapshot(snap, verify=True)
        assert (graph.n_vertices, graph.n_edges) == (1, 1)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_negative_vertex_id_is_a_clear_error(self, tmp_path, workers):
        source = tmp_path / "neg.el"
        source.write_text("0 1\n2 -3\n")
        with pytest.raises(IOFormatError, match="negative vertex id -3"):
            ingest_edge_list(source, tmp_path / "neg.gmsnap",
                             workers=workers, temp_dir=tmp_path)
        assert _no_scratch_left(tmp_path)


# ---------------------------------------------------------------------------
# Failure paths: no orphaned scratch, no half-written snapshots.
# ---------------------------------------------------------------------------


class TestFailureCleanup:
    @pytest.mark.parametrize("point", [
        "ingest.parse.chunk",
        "ingest.route.shard",
        "ingest.finalize.block",
    ])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_injected_crash_leaves_no_debris(self, tmp_path, point, workers):
        source = _write_edges(tmp_path / "g.el", 40, 200, seed=13)
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        snap = tmp_path / "g.gmsnap"
        faults.activate(f"{point}=raise")
        with pytest.raises(InjectedFault):
            ingest_edge_list(source, snap, n_partitions=4, chunk_edges=19,
                             workers=workers, temp_dir=scratch)
        faults.deactivate()
        assert _no_scratch_left(scratch)
        assert not snap.exists()
        assert not list(tmp_path.glob("*.tmp*"))
        # The same conversion succeeds once the fault is gone.
        ingest_edge_list(source, snap, n_partitions=4, chunk_edges=19,
                         workers=workers, temp_dir=scratch)
        assert load_snapshot(snap, verify=True).n_vertices > 0
        assert _no_scratch_left(scratch)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_malformed_input_mid_file_cleans_up(self, tmp_path, workers):
        source = tmp_path / "bad.el"
        lines = [f"{k % 10} {(k * 7) % 10}" for k in range(100)]
        lines[73] = "3 not-a-number"
        source.write_text("\n".join(lines) + "\n")
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        snap = tmp_path / "bad.gmsnap"
        with pytest.raises(IOFormatError, match="malformed numeric field"):
            ingest_edge_list(source, snap, chunk_edges=11, workers=workers,
                             temp_dir=scratch)
        assert _no_scratch_left(scratch)
        assert not snap.exists()

    def test_missing_source_leaves_no_scratch(self, tmp_path):
        """An unopenable source fails before the pipeline starts; the
        freshly made scratch directory must not be orphaned."""
        with pytest.raises(OSError):
            ingest_edge_list(tmp_path / "does-not-exist.el",
                             tmp_path / "x.gmsnap", temp_dir=tmp_path)
        assert _no_scratch_left(tmp_path)

    def test_mtx_nnz_mismatch_cleans_up(self, tmp_path):
        source = tmp_path / "short.mtx"
        source.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "5 5 4\n"
            "1 2\n2 3\n"
        )
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        with pytest.raises(IOFormatError, match="declared nnz=4 but read 2"):
            ingest_mtx(source, tmp_path / "short.gmsnap", workers=2,
                       chunk_edges=1, temp_dir=scratch)
        assert _no_scratch_left(scratch)


# ---------------------------------------------------------------------------
# Counter aggregation across workers.
# ---------------------------------------------------------------------------


class TestCounterAggregation:
    def test_counters_match_single_process(self, tmp_path):
        source = _write_edges(tmp_path / "g.el", 70, 500, seed=17)
        reports = {}
        for workers in (1, 2, 4):
            snap = tmp_path / f"g-w{workers}.gmsnap"
            reports[workers] = ingest_edge_list(
                source, snap, n_partitions=4, chunk_edges=43,
                workers=workers, temp_dir=tmp_path,
            )
        single = reports[1]
        assert single.chunks >= 2  # small chunk_edges forces real chunking
        for workers, report in reports.items():
            assert report.chunks == single.chunks
            assert report.n_edges == single.n_edges
            assert report.n_edges_raw == single.n_edges_raw
            assert report.peak_partition_edges == single.peak_partition_edges
            assert report.snapshot_bytes == single.snapshot_bytes
            assert report.workers == workers
            assert report.parse_seconds >= 0.0
            assert report.route_seconds >= 0.0
            assert report.finalize_seconds >= 0.0
            assert report.total_seconds >= report.parse_seconds


# ---------------------------------------------------------------------------
# CLI plumbing.
# ---------------------------------------------------------------------------


class TestCli:
    def test_convert_accepts_workers_and_temp_dir(self, tmp_path, capsys):
        source = _write_edges(tmp_path / "g.el", 30, 150, seed=19)
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        snap = tmp_path / "g.gmsnap"
        code = cli_main([
            "convert", str(source), str(snap),
            "--workers", "2", "--temp-dir", str(scratch),
            "--partitions", "3", "--chunk-edges", "29",
        ])
        assert code == 0
        assert "2 workers" in capsys.readouterr().out
        assert _no_scratch_left(scratch)
        # Byte-identical to the API path with the same options.
        api = tmp_path / "api.gmsnap"
        ingest_file(source, api, n_partitions=3, chunk_edges=29, workers=1,
                    temp_dir=scratch)
        assert filecmp.cmp(snap, api, shallow=False)
