"""DCSC format tests: invariants, conversions, caches (paper section 4.4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.matrix.coo import COOMatrix
from repro.matrix.dcsc import DCSCMatrix
from repro.matrix.ops import dense_from, matrices_equal

from tests.test_matrix_formats import coo_matrices, small_coo


class TestConstruction:
    def test_from_coo_compresses_empty_columns(self):
        coo = COOMatrix(
            (6, 6), np.array([0, 1]), np.array([0, 5]), np.array([1.0, 2.0])
        )
        dcsc = DCSCMatrix.from_coo(coo)
        assert dcsc.nzc == 2
        assert dcsc.jc.tolist() == [0, 5]
        assert dcsc.nnz == 2

    def test_empty_matrix(self):
        dcsc = DCSCMatrix.from_coo(
            COOMatrix((4, 4), np.zeros(0, np.int64), np.zeros(0, np.int64))
        )
        assert dcsc.nzc == 0
        assert dcsc.nnz == 0
        assert list(dcsc.columns()) == []

    def test_row_range_restriction(self):
        coo = small_coo()
        block = DCSCMatrix.from_coo(coo, row_range=(0, 2))
        assert block.nnz == 3  # rows 0 and 1 hold 3 entries
        assert block.row_range == (0, 2)
        assert block.ir.max() < 2

    def test_roundtrip(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        assert matrices_equal(dcsc.to_coo(), small_coo())

    def test_to_scipy_matches_dense(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        assert np.allclose(dcsc.to_scipy().toarray(), dense_from(small_coo()))


class TestValidation:
    def test_unsorted_jc_rejected(self):
        with pytest.raises(FormatError):
            DCSCMatrix(
                (3, 3),
                jc=np.array([2, 1]),
                cp=np.array([0, 1, 2]),
                ir=np.array([0, 0]),
                num=np.array([1.0, 1.0]),
            )

    def test_empty_listed_column_rejected(self):
        with pytest.raises(FormatError):
            DCSCMatrix(
                (3, 3),
                jc=np.array([0, 1]),
                cp=np.array([0, 1, 1]),  # column 1 listed but empty
                ir=np.array([0]),
                num=np.array([1.0]),
            )

    def test_cp_jc_length_mismatch(self):
        with pytest.raises(FormatError):
            DCSCMatrix(
                (3, 3),
                jc=np.array([0]),
                cp=np.array([0, 1, 2]),
                ir=np.array([0, 1]),
                num=np.array([1.0, 1.0]),
            )

    def test_rows_outside_row_range_rejected(self):
        with pytest.raises(FormatError):
            DCSCMatrix(
                (4, 4),
                jc=np.array([0]),
                cp=np.array([0, 1]),
                ir=np.array([3]),
                num=np.array([1.0]),
                row_range=(0, 2),
            )


class TestAccess:
    def test_column_lookup(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        rows, vals = dcsc.column(2)
        assert rows.tolist() == [0, 1]
        assert vals.tolist() == [2.0, 3.0]

    def test_missing_column_is_empty(self):
        coo = COOMatrix((4, 4), np.array([0]), np.array([1]))
        dcsc = DCSCMatrix.from_coo(coo)
        rows, vals = dcsc.column(3)
        assert rows.size == 0 and vals.size == 0
        assert dcsc.column_position(3) == -1

    def test_columns_iteration_matches_nnz(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        seen = sum(rows.shape[0] for _, rows, _ in dcsc.columns())
        assert seen == dcsc.nnz

    def test_column_degrees(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        assert dcsc.column_degrees().sum() == dcsc.nnz

    def test_restrict_columns(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        mask = np.zeros(4, dtype=bool)
        mask[2] = True
        restricted = dcsc.restrict_columns(mask)
        assert restricted.jc.tolist() == [2]
        assert restricted.nnz == 2

    def test_restrict_columns_empty_result(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        restricted = dcsc.restrict_columns(np.zeros(4, dtype=bool))
        assert restricted.nnz == 0
        assert restricted.nzc == 0


class TestCaches:
    def test_col_expanded_aligns_with_ir(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        cols = dcsc.col_expanded()
        assert cols.shape[0] == dcsc.nnz
        # Entry k lives in column cols[k]: verify against scipy.
        dense = dense_from(small_coo())
        for k in range(dcsc.nnz):
            assert dense[dcsc.ir[k], cols[k]] == dcsc.num[k]

    def test_dst_groups_cover_all_edges(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        order, starts, uniq = dcsc.dst_groups()
        assert order.shape[0] == dcsc.nnz
        assert np.array_equal(np.sort(dcsc.ir), dcsc.ir[order])
        assert uniq.tolist() == sorted(set(dcsc.ir.tolist()))
        assert starts[0] == 0

    def test_dst_groups_cached(self):
        dcsc = DCSCMatrix.from_coo(small_coo())
        assert dcsc.dst_groups() is dcsc.dst_groups()


@given(coo=coo_matrices())
@settings(max_examples=60, deadline=None)
def test_dcsc_roundtrip_matches_scipy(coo):
    deduped = coo.deduplicated("last")
    dcsc = DCSCMatrix.from_coo(deduped)
    assert np.allclose(dcsc.to_scipy().toarray(), dense_from(deduped))
    # jc strictly increasing, cp strictly increasing
    assert np.all(np.diff(dcsc.jc) > 0)
    assert np.all(np.diff(dcsc.cp) > 0) or dcsc.nzc == 0


@given(coo=coo_matrices(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_dcsc_row_slices_partition_nnz(coo, data):
    """Row-range blocks partition the entries exactly."""
    deduped = coo.deduplicated("last")
    n_rows = deduped.shape[0]
    cut = data.draw(st.integers(0, n_rows))
    low = DCSCMatrix.from_coo(deduped, row_range=(0, cut))
    high = DCSCMatrix.from_coo(deduped, row_range=(cut, n_rows))
    assert low.nnz + high.nnz == deduped.nnz
