"""Runaway-query containment at the engine layer.

Covers the :class:`~repro.core.cancellation.CancellationToken` contract,
the three-level iteration-bound precedence rule on
:class:`~repro.core.options.EngineOptions` (explicit ``max_iterations``
> token budget/deadline > ``safety_cap``), and cooperative cancellation
in both superstep loops — where the load-bearing property is that a lane
cancelled mid-batch leaves every *surviving* lane bitwise identical to
its sequential run, and a lane cancelled by superstep budget B is
bitwise identical to an intentional ``max_iterations=B`` run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.pagerank import (
    PersonalizedPageRankProgram,
    inverse_out_degrees,
    run_personalized_pagerank,
)
from repro.core.cancellation import CancellationToken
from repro.core.engine import run_graph_program, run_graph_programs_batched
from repro.core.graph_program import EdgeDirection, SemiringProgram
from repro.core.options import EngineOptions
from repro.core.semiring import MIN_FIRST
from repro.errors import ConvergenceError, ProgramError
from repro.graph.generators import cycle_graph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.preprocess import with_random_weights
from repro.vector.sparse_vector import FLOAT64


class _FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# CancellationToken
# ----------------------------------------------------------------------
class TestCancellationToken:
    def test_timeout_becomes_deadline(self):
        clock = _FakeClock()
        token = CancellationToken(timeout=2.0, clock=clock)
        assert token.check(0) is None
        assert token.remaining() == pytest.approx(2.0)
        clock.now += 2.5
        reason = token.check(1)
        assert reason is not None and "deadline exceeded" in reason
        assert token.cancelled

    def test_deadline_sticks_once_fired(self):
        clock = _FakeClock()
        token = CancellationToken(timeout=1.0, clock=clock)
        clock.now += 5.0
        first = token.check(0)
        clock.now += 5.0
        assert token.check(1) == first  # reason is latched, not recomputed

    def test_superstep_budget(self):
        token = CancellationToken(superstep_budget=3)
        assert token.check(0) is None
        assert token.check(2) is None
        reason = token.check(3)
        assert reason is not None and "superstep budget" in reason

    def test_budget_needs_iteration(self):
        # A check without an iteration (serving-side admission) never
        # trips the budget, only the clock.
        token = CancellationToken(superstep_budget=1)
        assert token.check() is None
        assert not token.cancelled

    def test_explicit_cancel_wins_and_is_first_wins(self):
        token = CancellationToken(timeout=1000.0)
        token.cancel("operator abort")
        token.cancel("second call")
        assert token.check(0) == "operator abort"

    def test_remaining_without_deadline(self):
        assert CancellationToken(superstep_budget=5).remaining() is None

    def test_validation(self):
        with pytest.raises(ProgramError):
            CancellationToken(timeout=1.0, deadline_at=5.0)
        with pytest.raises(ProgramError):
            CancellationToken(timeout=0.0)
        with pytest.raises(ProgramError):
            CancellationToken(timeout=-1.0)
        with pytest.raises(ProgramError):
            CancellationToken(superstep_budget=0)


# ----------------------------------------------------------------------
# EngineOptions precedence
# ----------------------------------------------------------------------
class TestIterationBoundPrecedence:
    def test_explicit_max_iterations_owns_the_bound(self):
        options = EngineOptions(max_iterations=7, safety_cap=3)
        assert options.iteration_bound() == (7, "max_iterations")

    def test_quiescence_run_falls_to_safety_cap(self):
        options = EngineOptions(max_iterations=-1, safety_cap=50)
        assert options.iteration_bound() == (50, "safety_cap")

    def test_validation(self):
        with pytest.raises(ProgramError):
            EngineOptions(safety_cap=0)
        with pytest.raises(ProgramError):
            EngineOptions(token="not a token")


# ----------------------------------------------------------------------
# Sequential loop
# ----------------------------------------------------------------------
class _MinProgram(SemiringProgram):
    def apply(self, reduced, vertex_prop):
        return min(reduced, vertex_prop)

    def apply_batch(self, reduced, props):
        return np.minimum(reduced, props)


def _min_label_graph(n=20):
    graph = cycle_graph(n)
    graph.init_properties(FLOAT64)
    graph.vertex_properties.data[:] = np.arange(n, dtype=np.float64)
    graph.set_all_active()
    return graph


class TestSequentialCancellation:
    def test_budget_cancels_and_matches_max_iterations(self):
        """Budget B == an intentional max_iterations=B run, bitwise —
        except the budget run is *marked* cancelled."""
        reference = _min_label_graph()
        ref_stats = run_graph_program(
            reference, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(max_iterations=4),
        )
        governed = _min_label_graph()
        stats = run_graph_program(
            governed, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(
                max_iterations=-1,
                token=CancellationToken(superstep_budget=4),
            ),
        )
        assert stats.cancelled and "superstep budget" in stats.cancel_reason
        assert not stats.converged
        assert stats.n_supersteps == ref_stats.n_supersteps == 4
        assert np.array_equal(
            governed.vertex_properties.data, reference.vertex_properties.data
        )
        assert stats.to_dict()["cancelled"] is True

    def test_deadline_cancels_within_one_superstep(self):
        clock = _FakeClock()
        token = CancellationToken(timeout=10.0, clock=clock)

        class _TickingProgram(_MinProgram):
            def apply(self, reduced, vertex_prop):
                clock.now += 4.0  # each superstep "takes" 4 s
                return min(reduced, vertex_prop)

            def apply_batch(self, reduced, props):
                clock.now += 4.0
                return np.minimum(reduced, props)

        graph = _min_label_graph()
        stats = run_graph_program(
            graph, _TickingProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(max_iterations=-1, token=token),
        )
        assert stats.cancelled and "deadline exceeded" in stats.cancel_reason
        # Deadline fires during superstep 3 (clock hits 12 s > 10 s);
        # the loop notices at the NEXT boundary: <= 1 superstep late.
        assert stats.n_supersteps == 3

    def test_pre_cancelled_token_runs_zero_supersteps(self):
        graph = _min_label_graph()
        token = CancellationToken()
        token.cancel("cancelled before submit")
        stats = run_graph_program(
            graph, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(max_iterations=-1, token=token),
        )
        assert stats.cancelled and stats.n_supersteps == 0

    def test_uncancelled_token_changes_nothing(self):
        reference = _min_label_graph()
        ref_stats = run_graph_program(
            reference, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(max_iterations=-1),
        )
        governed = _min_label_graph()
        stats = run_graph_program(
            governed, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(
                max_iterations=-1, token=CancellationToken(timeout=3600.0)
            ),
        )
        assert ref_stats.converged and stats.converged
        assert not stats.cancelled
        assert stats.n_supersteps == ref_stats.n_supersteps
        assert np.array_equal(
            governed.vertex_properties.data, reference.vertex_properties.data
        )

    def test_safety_cap_raises_naming_itself(self):
        graph = _min_label_graph()
        with pytest.raises(ConvergenceError, match="safety_cap bound fired"):
            run_graph_program(
                graph, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
                EngineOptions(max_iterations=-1, safety_cap=2),
            )

    def test_budget_equal_to_convergence_is_not_cancelled(self):
        """A budget the run never reaches leaves the run unmarked."""
        graph = _min_label_graph(6)
        stats = run_graph_program(
            graph, _MinProgram(MIN_FIRST, EdgeDirection.OUT_EDGES),
            EngineOptions(
                max_iterations=-1,
                token=CancellationToken(superstep_budget=1000),
            ),
        )
        assert stats.converged and not stats.cancelled


# ----------------------------------------------------------------------
# Batched loop: per-lane cancellation, survivors bitwise intact
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def rmat():
    return with_random_weights(
        rmat_graph(scale=8, edge_factor=8, seed=11), seed=12
    )


ROOTS = (0, 3, 17, 42)


def _ppr_batch_state(graph, sources):
    n, k = graph.n_vertices, len(sources)
    programs = [PersonalizedPageRankProgram() for _ in sources]
    properties = np.zeros((k, n, 3))
    properties[:, :, 1] = inverse_out_degrees(graph)[None, :]
    active = np.ones((k, n), dtype=bool)
    for lane, source in enumerate(sources):
        properties[lane, source, 0] = 1.0
        properties[lane, source, 2] = 1.0
    return programs, properties, active


class TestBatchedCancellation:
    def test_cancelled_lane_leaves_survivors_bitwise(self, rmat):
        """The adversarial core: one lane's budget fires mid-batch; the
        other lanes' results must equal their sequential runs bit for
        bit, and the cancelled lane must equal a sequential run stopped
        at exactly its budget."""
        budget = 3
        programs, properties, active = _ppr_batch_state(rmat, ROOTS)
        lane_tokens = [None] * len(ROOTS)
        lane_tokens[1] = CancellationToken(superstep_budget=budget)
        run = run_graph_programs_batched(
            rmat, programs, properties, active,
            EngineOptions(max_iterations=10),
            lane_tokens=lane_tokens,
        )
        assert run.cancelled and run.lanes_cancelled == 1
        assert run.lane_stats[1].cancelled
        assert run.lane_stats[1].n_supersteps == budget
        assert run.to_dict()["lanes_cancelled"] == 1
        for lane, source in enumerate(ROOTS):
            iterations = budget if lane == 1 else 10
            ref = run_personalized_pagerank(
                rmat, source, max_iterations=iterations
            )
            assert np.array_equal(ref.ranks, run.properties[lane, :, 0]), (
                f"lane {lane} diverged after lane 1 was cancelled"
            )

    def test_batch_token_cancels_every_live_lane(self, rmat):
        programs, properties, active = _ppr_batch_state(rmat, ROOTS)
        run = run_graph_programs_batched(
            rmat, programs, properties, active,
            EngineOptions(
                max_iterations=10,
                token=CancellationToken(superstep_budget=2),
            ),
        )
        assert run.lanes_cancelled == len(ROOTS)
        assert all(s.n_supersteps == 2 for s in run.lane_stats)
        for lane, source in enumerate(ROOTS):
            ref = run_personalized_pagerank(rmat, source, max_iterations=2)
            assert np.array_equal(ref.ranks, run.properties[lane, :, 0])

    def test_lane_token_count_must_match(self, rmat):
        programs, properties, active = _ppr_batch_state(rmat, ROOTS)
        with pytest.raises(ProgramError, match="lane_tokens"):
            run_graph_programs_batched(
                rmat, programs, properties, active,
                EngineOptions(max_iterations=2),
                lane_tokens=[CancellationToken(superstep_budget=1)],
            )

    def test_batched_safety_cap_names_itself(self, rmat):
        programs, properties, active = _ppr_batch_state(rmat, ROOTS[:2])
        with pytest.raises(ConvergenceError, match="safety_cap bound fired"):
            run_graph_programs_batched(
                rmat, programs, properties, active,
                EngineOptions(max_iterations=-1, safety_cap=2),
            )
