"""Shared fixtures: small graphs with known answers, generator workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    bipartite_rating_graph,
    BipartiteSpec,
    figure1_graph,
    figure3_graph,
    gnm_random_graph,
    rmat_graph,
    road_graph,
)
from repro.graph.preprocess import symmetrize, to_dag, with_random_weights


@pytest.fixture
def fig1():
    return figure1_graph()


@pytest.fixture
def fig3():
    return figure3_graph()


@pytest.fixture(scope="session")
def rmat_small():
    """Deterministic RMAT graph: 256 vertices, ~2k edges."""
    return rmat_graph(8, 8, seed=42)


@pytest.fixture(scope="session")
def rmat_weighted():
    return with_random_weights(rmat_graph(8, 8, seed=42), seed=7)


@pytest.fixture(scope="session")
def rmat_sym():
    return symmetrize(rmat_graph(8, 8, seed=42))


@pytest.fixture(scope="session")
def rmat_dag():
    return to_dag(rmat_graph(8, 8, seed=42))


@pytest.fixture(scope="session")
def bipartite_small():
    spec = BipartiteSpec(n_users=120, n_items=30, ratings_per_user=10)
    return bipartite_rating_graph(spec, seed=11), 120


@pytest.fixture(scope="session")
def road_small():
    return road_graph(12, 12, seed=3)


@pytest.fixture(scope="session")
def gnm_small():
    return gnm_random_graph(60, 300, seed=9, weighted=True)


def as_networkx(graph, directed=True):
    """Convert a repro Graph to networkx (tests only)."""
    import networkx as nx

    nxg = nx.DiGraph() if directed else nx.Graph()
    nxg.add_nodes_from(range(graph.n_vertices))
    coo = graph.edges
    for k in range(coo.nnz):
        nxg.add_edge(
            int(coo.rows[k]), int(coo.cols[k]), weight=float(coo.vals[k])
        )
    return nxg


@pytest.fixture
def nx_of():
    return as_networkx
