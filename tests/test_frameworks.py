"""Cross-framework integration tests: all five implementations must agree.

This is the reproduction's core integrity check: the Figure 4 comparison is
only meaningful if every framework computes the same answers.
"""

import numpy as np
import pytest

from repro.frameworks import (
    COMPARED_FRAMEWORKS,
    framework_names,
    make_framework,
)
from repro.frameworks.base import RunRecord, cf_initial_factors
from repro.graph.generators import BipartiteSpec, bipartite_rating_graph, rmat_graph
from repro.graph.preprocess import symmetrize, to_dag, with_random_weights

ALL = framework_names()


@pytest.fixture(scope="module")
def workloads():
    g = rmat_graph(8, 8, seed=21)
    return {
        "directed": g,
        "weighted": with_random_weights(g, seed=4),
        "sym": symmetrize(g),
        "dag": to_dag(g),
        "bipartite": (
            bipartite_rating_graph(
                BipartiteSpec(n_users=150, n_items=40, ratings_per_user=8),
                seed=5,
            ),
            150,
        ),
    }


@pytest.fixture(scope="module")
def reference(workloads):
    fw = make_framework("graphmat")
    bip, n_users = workloads["bipartite"]
    return {
        "pagerank": fw.pagerank(workloads["directed"], iterations=4)[0],
        "bfs": fw.bfs(workloads["sym"], 0)[0],
        "sssp": fw.sssp(workloads["weighted"], 0)[0],
        "tc": fw.triangle_count(workloads["dag"])[0],
        "cf": fw.collaborative_filtering(
            bip, n_users, k=4, iterations=3, seed=8
        )[0],
    }


@pytest.mark.parametrize("name", [n for n in ALL if n != "graphmat"])
class TestAgreement:
    def test_pagerank(self, name, workloads, reference):
        got, record = make_framework(name).pagerank(
            workloads["directed"], iterations=4
        )
        assert np.allclose(got, reference["pagerank"], rtol=1e-9)
        assert record.iterations == 4

    def test_bfs(self, name, workloads, reference):
        got, _ = make_framework(name).bfs(workloads["sym"], 0)
        assert np.array_equal(got, reference["bfs"])

    def test_sssp(self, name, workloads, reference):
        got, _ = make_framework(name).sssp(workloads["weighted"], 0)
        assert np.allclose(got, reference["sssp"], equal_nan=True)

    def test_triangle_count(self, name, workloads, reference):
        got, _ = make_framework(name).triangle_count(workloads["dag"])
        assert got == reference["tc"]

    def test_cf(self, name, workloads, reference):
        bip, n_users = workloads["bipartite"]
        got, _ = make_framework(name).collaborative_filtering(
            bip, n_users, k=4, iterations=3, seed=8
        )
        if name == "native":
            # Native is SGD (per the paper): trajectories differ, but it
            # must still fit the ratings better than the initial factors.
            from repro.algorithms.collaborative_filtering import train_rmse

            initial = cf_initial_factors(bip.n_vertices, 4, 8)
            assert train_rmse(bip, got) < train_rmse(bip, initial)
        else:
            assert np.allclose(got, reference["cf"], rtol=1e-8)


@pytest.mark.parametrize("name", ALL)
class TestRunRecords:
    def test_record_contents(self, name, workloads):
        _, record = make_framework(name).pagerank(
            workloads["directed"], iterations=2
        )
        assert isinstance(record, RunRecord)
        assert record.algorithm == "pagerank"
        assert record.seconds > 0
        assert record.iterations == 2
        assert record.seconds_per_iteration() <= record.seconds
        assert record.counters.total_events > 0

    def test_work_profile_present(self, name, workloads):
        _, record = make_framework(name).pagerank(
            workloads["directed"], iterations=2
        )
        assert len(record.per_iteration_work) >= 1
        assert all(units.size >= 1 for units in record.per_iteration_work)


class TestDispatch:
    def test_run_by_name(self, workloads):
        fw = make_framework("graphmat")
        value, record = fw.run("bfs", workloads["sym"], 0)
        assert record.algorithm == "bfs"
        assert value.shape[0] == workloads["sym"].n_vertices

    def test_unknown_algorithm(self, workloads):
        with pytest.raises(KeyError):
            make_framework("graphmat").run("mst", workloads["directed"])

    def test_unknown_framework(self):
        with pytest.raises(KeyError):
            make_framework("pregel")

    def test_compared_set(self):
        assert COMPARED_FRAMEWORKS[-1] == "graphmat"
        assert "native" not in COMPARED_FRAMEWORKS


class TestCombBLASSpecifics:
    def test_spgemm_cap_triggers_dnf(self, workloads):
        from repro.errors import BenchmarkError
        from repro.frameworks.combblas_like import CombBLASLikeFramework

        fw = CombBLASLikeFramework(spgemm_limit=10)
        with pytest.raises(BenchmarkError, match="memory cap"):
            fw.triangle_count(workloads["dag"])

    def test_square_grid_profile(self):
        fw = make_framework("combblas")
        assert fw.scaling_profile.square_processes_only
        assert fw.scaling_profile.usable_threads(24) == 16
        assert fw.scaling_profile.usable_threads(9) == 9

    def test_counters_show_extra_allocations(self, workloads):
        """CombBLAS's copies and merges must show in the event counts."""
        _, cb = make_framework("combblas").pagerank(
            workloads["directed"], iterations=3
        )
        _, gm = make_framework("graphmat").pagerank(
            workloads["directed"], iterations=3
        )
        assert cb.counters.allocations > gm.counters.allocations


class TestGaloisSpecifics:
    def test_async_sssp_fewer_relaxations(self, workloads):
        """Asynchronous execution must process fewer edges than BSP."""
        _, galois = make_framework("galois").sssp(workloads["weighted"], 0)
        _, graphmat = make_framework("graphmat").sssp(
            workloads["weighted"], 0
        )
        galois_edges = sum(
            units.sum() for units in galois.per_iteration_work
        )
        graphmat_edges = sum(
            units.sum() for units in graphmat.per_iteration_work
        )
        assert galois_edges < graphmat_edges

    def test_sssp_many_seeds(self):
        """Async bucket schedule converges to Dijkstra on many graphs."""
        from scipy.sparse import csgraph

        fw = make_framework("galois")
        for seed in range(6):
            g = with_random_weights(rmat_graph(6, 6, seed=seed), seed=seed)
            got, _ = fw.sssp(g, 0)
            expected = csgraph.dijkstra(g.edges.to_scipy().tocsr(), indices=0)
            assert np.allclose(got, expected, equal_nan=True)


class TestGraphLabSpecifics:
    def test_per_vertex_user_calls_dominate(self, workloads):
        """Vertex-at-a-time interpretation shows up as user calls."""
        _, gl = make_framework("graphlab").pagerank(
            workloads["directed"], iterations=2
        )
        _, gm = make_framework("graphmat").pagerank(
            workloads["directed"], iterations=2
        )
        assert gl.counters.user_calls > 10 * gm.counters.user_calls
