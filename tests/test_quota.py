"""Per-tenant token-bucket admission (:mod:`repro.serve.quota`)."""

from __future__ import annotations

import pytest

from repro.errors import QuotaExceededError, ServeError
from repro.serve.quota import DEFAULT_TENANT, QuotaManager, TenantPolicy


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestTenantPolicy:
    def test_validation(self):
        with pytest.raises(ServeError):
            TenantPolicy(rate=0)
        with pytest.raises(ServeError):
            TenantPolicy(burst=0.5)
        with pytest.raises(ServeError):
            TenantPolicy(max_in_flight=0)
        with pytest.raises(ServeError):
            TenantPolicy(max_queue_share=0)
        with pytest.raises(ServeError):
            TenantPolicy(max_queue_share=1.5)

    def test_effective_burst_defaults_to_rate(self):
        assert TenantPolicy(rate=8.0).effective_burst == 8.0
        assert TenantPolicy(rate=0.25).effective_burst == 1.0
        assert TenantPolicy(rate=4.0, burst=2.0).effective_burst == 2.0
        assert TenantPolicy.unlimited().effective_burst == 1.0


class TestRateBucket:
    def test_burst_then_refill(self):
        clock = _FakeClock()
        quota = QuotaManager(
            default=TenantPolicy(rate=2.0, burst=3), clock=clock
        )
        for _ in range(3):
            quota.admit("a")
        with pytest.raises(QuotaExceededError, match="exceeded its rate"):
            quota.admit("a")
        # 2 req/s refill: after 1 s two more tokens are available.
        clock.now += 1.0
        quota.admit("a")
        quota.admit("a")
        with pytest.raises(QuotaExceededError):
            quota.admit("a")

    def test_retry_after_reflects_the_deficit(self):
        clock = _FakeClock()
        quota = QuotaManager(
            default=TenantPolicy(rate=0.5, burst=1), clock=clock
        )
        quota.admit("a")
        with pytest.raises(QuotaExceededError) as excinfo:
            quota.admit("a")
        # Empty bucket at 0.5 tokens/s: the next token is ~2 s away.
        assert excinfo.value.retry_after == pytest.approx(2.0)
        assert excinfo.value.tenant == "a"

    def test_refusals_do_not_burn_rate_budget(self):
        clock = _FakeClock()
        quota = QuotaManager(
            default=TenantPolicy(rate=1.0, burst=1), clock=clock
        )
        quota.admit("a")
        for _ in range(10):  # a refusal storm must not push Retry-After out
            with pytest.raises(QuotaExceededError):
                quota.admit("a")
        clock.now += 1.0
        quota.admit("a")  # exactly one second later, one token: admitted

    def test_tenants_have_independent_buckets(self):
        clock = _FakeClock()
        quota = QuotaManager(
            default=TenantPolicy(rate=1.0, burst=1), clock=clock
        )
        quota.admit("a")
        with pytest.raises(QuotaExceededError):
            quota.admit("a")
        quota.admit("b")  # b's bucket is untouched by a's flood


class TestCaps:
    def test_in_flight_cap_and_release(self):
        quota = QuotaManager(default=TenantPolicy(max_in_flight=2))
        quota.admit("a")
        quota.admit("a")
        with pytest.raises(QuotaExceededError, match="in flight"):
            quota.admit("a")
        quota.release("a")
        quota.admit("a")

    def test_queue_share_cap(self):
        quota = QuotaManager(default=TenantPolicy(max_queue_share=0.25))
        quota.admit("a", max_queue=8)
        quota.admit("a", max_queue=8)
        with pytest.raises(QuotaExceededError, match="queue share"):
            quota.admit("a", max_queue=8)
        # Without a max_queue (embedded callers) the share cap is moot.
        quota.admit("a")

    def test_per_tenant_policy_overrides_default(self):
        quota = QuotaManager(
            default=TenantPolicy(max_in_flight=1),
            per_tenant={"vip": TenantPolicy.unlimited()},
        )
        quota.admit("vip")
        quota.admit("vip")
        quota.admit("other")
        with pytest.raises(QuotaExceededError):
            quota.admit("other")


class TestIdentity:
    def test_none_falls_back_to_default_tenant(self):
        quota = QuotaManager(default=TenantPolicy(max_in_flight=1))
        assert quota.admit(None) == DEFAULT_TENANT
        with pytest.raises(QuotaExceededError):
            quota.admit(None)
        quota.release(None)
        quota.admit(None)

    def test_release_of_unknown_tenant_is_harmless(self):
        QuotaManager().release("never-admitted")

    def test_stats_counters(self):
        quota = QuotaManager(
            default=TenantPolicy(rate=1.0, burst=1, max_in_flight=5)
        )
        quota.admit("a")
        with pytest.raises(QuotaExceededError):
            quota.admit("a")
        stats = quota.stats()
        assert stats["default_policy"]["rate"] == 1.0
        tenant = stats["tenants"]["a"]
        assert tenant["admitted"] == 1
        assert tenant["in_flight"] == 1
        assert tenant["rejected_rate"] == 1
        assert tenant["policy"]["max_in_flight"] == 5
