"""Performance substrate tests: counters, machine model, parallel simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BenchmarkError
from repro.perf.counters import EventCounters
from repro.perf.machine import (
    DEFAULT_MACHINE,
    MachineModel,
    derive_report,
    graph_working_set_bytes,
)
from repro.perf.parallel_model import (
    ScalingProfile,
    makespan,
    repartition_units,
    simulate_superstep_time,
    speedup_curve,
)
from repro.perf.timers import Timer, time_call


class TestCounters:
    def test_record_accumulates(self):
        c = EventCounters()
        c.record(user_calls=2, element_ops=10)
        c.record(user_calls=3, random_accesses=5)
        assert c.user_calls == 5
        assert c.element_ops == 10
        assert c.random_accesses == 5
        assert c.total_events == 20

    def test_merge(self):
        a = EventCounters(user_calls=1)
        b = EventCounters(user_calls=2, allocations=3)
        a.merge(b)
        assert a.user_calls == 3 and a.allocations == 3

    def test_copy_independent(self):
        a = EventCounters(user_calls=1)
        b = a.copy()
        b.record(user_calls=9)
        assert a.user_calls == 1

    def test_as_dict(self):
        d = EventCounters(messages=7).as_dict()
        assert d["messages"] == 7
        assert set(d) == {
            "user_calls",
            "element_ops",
            "random_accesses",
            "sequential_bytes",
            "allocations",
            "messages",
        }


class TestMachineModel:
    def test_miss_rate_bounds(self):
        m = DEFAULT_MACHINE
        assert m.miss_rate(0) == m.min_miss_rate
        assert m.miss_rate(m.cache_bytes // 2) == m.min_miss_rate
        assert m.miss_rate(100 * m.cache_bytes) > 0.9
        assert m.miss_rate(10**15) <= 1.0

    def test_more_user_calls_more_instructions(self):
        lean = EventCounters(user_calls=10, element_ops=1000)
        fat = EventCounters(user_calls=10_000, element_ops=1000)
        ws = 10**9
        assert (
            derive_report(fat, ws).instructions
            > derive_report(lean, ws).instructions
        )

    def test_more_random_accesses_more_stalls(self):
        lean = EventCounters(element_ops=1000, random_accesses=10)
        fat = EventCounters(element_ops=1000, random_accesses=10_000)
        ws = 10**9
        assert (
            derive_report(fat, ws).stall_cycles
            > derive_report(lean, ws).stall_cycles
        )

    def test_stalls_lower_ipc(self):
        lean = EventCounters(element_ops=10_000, random_accesses=10)
        fat = EventCounters(element_ops=10_000, random_accesses=10_000)
        ws = 10**9
        assert derive_report(fat, ws).ipc < derive_report(lean, ws).ipc

    def test_normalized_to(self):
        a = derive_report(EventCounters(element_ops=100), 10**9)
        ratios = a.normalized_to(a)
        assert ratios["instructions"] == pytest.approx(1.0)
        assert ratios["ipc"] == pytest.approx(1.0)

    def test_empty_counters(self):
        report = derive_report(EventCounters(), 10**9)
        assert report.cycles == 0
        assert report.ipc == 0

    def test_working_set_estimate(self):
        assert graph_working_set_bytes(10, 100) == 16 * 100 + 24 * 10


class TestMakespan:
    def test_single_thread_is_total(self):
        costs = np.array([3.0, 1.0, 2.0])
        assert makespan(costs, 1, "static") == 6.0
        assert makespan(costs, 1, "dynamic") == 6.0

    def test_dynamic_beats_static_on_skew(self):
        # One giant unit first: static contiguous chunks overload thread 0.
        costs = np.array([100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        assert makespan(costs, 4, "dynamic") <= makespan(costs, 4, "static")

    def test_dynamic_is_lpt(self):
        costs = np.array([5.0, 4.0, 3.0, 3.0])
        # LPT on 2 threads: {5,3} and {4,3} -> makespan 8.
        assert makespan(costs, 2, "dynamic") == 8.0

    def test_empty(self):
        assert makespan(np.array([]), 4, "dynamic") == 0.0

    def test_bad_inputs(self):
        with pytest.raises(BenchmarkError):
            makespan(np.array([1.0]), 0, "static")
        with pytest.raises(BenchmarkError):
            makespan(np.array([1.0]), 2, "random")

    def test_makespan_lower_bound(self):
        """Makespan >= max unit and >= total/threads (scheduling bounds)."""
        rng = np.random.default_rng(0)
        costs = rng.uniform(1, 50, size=30)
        for threads in (2, 4, 8):
            for schedule in ("static", "dynamic"):
                ms = makespan(costs, threads, schedule)
                assert ms >= costs.max() - 1e-9
                assert ms >= costs.sum() / threads - 1e-9


class TestScalingProfile:
    def test_square_constraint(self):
        profile = ScalingProfile(name="x", square_processes_only=True)
        assert profile.usable_threads(24) == 16
        assert profile.usable_threads(3) == 1
        assert profile.usable_threads(16) == 16

    def test_no_constraint(self):
        assert ScalingProfile(name="x").usable_threads(24) == 24

    def test_sync_cost_increases_time(self):
        units = np.full(32, 10.0)
        cheap = ScalingProfile(name="a", sync_units=0.0)
        costly = ScalingProfile(name="b", sync_units=100.0)
        assert simulate_superstep_time(units, 8, costly) > simulate_superstep_time(
            units, 8, cheap
        )

    def test_speedup_curve_starts_at_one(self):
        units = [np.full(64, 5.0) for _ in range(3)]
        profile = ScalingProfile(name="x", sync_units=1.0)
        curve = speedup_curve(units, [1, 2, 4, 8], profile)
        assert curve[1] == pytest.approx(1.0)
        assert curve[8] > curve[1]

    def test_speedup_bounded_by_threads(self):
        units = [np.full(128, 5.0)]
        profile = ScalingProfile(name="x", bandwidth_beta=0.0, sync_units=0.0)
        curve = speedup_curve(units, [4], profile)
        assert curve[4] <= 4.0 + 1e-9

    def test_bandwidth_saturation_limits_speedup(self):
        units = [np.full(256, 5.0)]
        free = ScalingProfile(
            name="free", bandwidth_beta=0.0, streaming_fraction=1.0
        )
        saturated = ScalingProfile(
            name="sat", bandwidth_beta=0.5, streaming_fraction=1.0
        )
        assert (
            speedup_curve(units, [16], saturated)[16]
            < speedup_curve(units, [16], free)[16]
        )

    def test_repartition_conserves_total(self):
        units = np.arange(1, 33, dtype=np.float64)
        merged = repartition_units(units, 4)
        assert merged.shape[0] == 4
        assert merged.sum() == pytest.approx(units.sum())
        with pytest.raises(BenchmarkError):
            repartition_units(units, 0)


class TestTimers:
    def test_timer_context(self):
        with Timer() as t:
            sum(range(1000))
        assert t.seconds >= 0

    def test_time_call_returns_result(self):
        seconds, result = time_call(lambda x: x * 2, 21, repeats=2)
        assert result == 42
        assert seconds >= 0


@given(
    n_units=st.integers(1, 64),
    threads=st.integers(1, 24),
    data=st.data(),
)
@settings(max_examples=40, deadline=None)
def test_dynamic_never_worse_than_static(n_units, threads, data):
    costs = np.asarray(
        data.draw(
            st.lists(
                st.floats(0.1, 100.0),
                min_size=n_units,
                max_size=n_units,
            )
        )
    )
    # Greedy LPT is a 4/3-approximation; static contiguous has no bound.
    assert makespan(costs, threads, "dynamic") <= makespan(
        costs, threads, "static"
    ) * 4 / 3 + 1e-6
