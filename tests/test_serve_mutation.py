"""Serving-layer mutations: epoch-versioned caching, delta logs,
compaction, epoch pinning, and the ``POST /graphs/{name}/edges`` endpoint."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.algorithms.bfs import run_bfs
from repro.dynamic import DeltaGraph
from repro.graph.generators.rmat import rmat_graph
from repro.graph.graph import Graph
from repro.graph.preprocess import symmetrize
from repro.serve import BatchPolicy, GraphRegistry, GraphService, make_server
from repro.store import DeltaLog, save_snapshot


@pytest.fixture()
def sym():
    return symmetrize(rmat_graph(scale=7, edge_factor=8, seed=5))


@pytest.fixture()
def service(sym):
    registry = GraphRegistry()
    registry.add_graph("g", sym)
    with GraphService(
        registry, policy=BatchPolicy(max_batch_k=4, max_wait_ms=5.0)
    ) as svc:
        yield svc


def _post(server, path, body):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def unreached_vertex(values: np.ndarray) -> int:
    unreached = np.flatnonzero(~np.isfinite(values))
    assert unreached.size, "fixture graph should leave some vertex unreached"
    return int(unreached[0])


class TestServiceMutation:
    def test_mutation_bumps_epoch_and_updates_results(self, service, sym):
        first = service.query("g", "bfs", {"root": 0})
        target = unreached_vertex(first.values)
        summary = service.mutate(
            "g", inserts=([0, target], [target, 0])
        )
        assert summary["epoch"] == 1
        assert summary["inserted"] == 2
        entry = service.registry.entry("g")
        assert entry.epoch == 1
        assert isinstance(entry.graph, DeltaGraph)
        after = service.query("g", "bfs", {"root": 0})
        assert after.values[target] == 1.0
        # Bitwise identical to a from-scratch rebuild serving the query.
        coo = entry.graph.edges
        rebuilt = Graph.from_edges(
            sym.n_vertices, coo.rows.copy(), coo.cols.copy(),
            coo.vals.copy(), dedup=False,
        )
        assert np.array_equal(after.values, run_bfs(rebuilt, 0).distances)

    def test_mutation_invalidates_cached_results(self, service):
        """Satellite regression test: a cached pre-mutation response must
        never be served after the graph changes (epoch-versioned keys)."""
        first = service.query("g", "bfs", {"root": 0})
        assert service.query("g", "bfs", {"root": 0}).cached
        target = unreached_vertex(first.values)
        service.mutate("g", inserts=([0], [target]))
        after = service.query("g", "bfs", {"root": 0})
        assert not after.cached
        assert np.isfinite(after.values[target])
        assert not np.array_equal(after.values, first.values)
        # The new epoch's result caches under its own key.
        assert service.query("g", "bfs", {"root": 0}).cached

    def test_mutation_of_unknown_graph(self, service):
        from repro.errors import UnknownGraphError

        with pytest.raises(UnknownGraphError):
            service.mutate("nope", inserts=([0], [1]))

    def test_deletes_and_noop_deletes_reported(self, service, sym):
        u = int(sym.edges.rows[0])
        v = int(sym.edges.cols[0])
        summary = service.mutate("g", deletes=([u, u], [v, sym.n_vertices - 1]))
        assert summary["deleted"] >= 1
        assert summary["deleted"] + summary["noop_deletes"] == 2

    def test_epoch_pinning_mid_flight(self, sym):
        """Queries admitted before a mutation compute on their own epoch
        even when dispatch happens after the swap."""
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        # A long dispatch window so the mutation lands while the query
        # sits in the batcher's queue.
        with GraphService(
            registry, policy=BatchPolicy(max_batch_k=8, max_wait_ms=120.0)
        ) as svc:
            baseline = run_bfs(DeltaGraph(sym), 0).distances
            target = unreached_vertex(baseline)
            results = {}

            def ask():
                results["pinned"] = svc.query("g", "bfs", {"root": 0})

            thread = threading.Thread(target=ask)
            thread.start()
            # Let the query reach the queue, then mutate.
            import time

            time.sleep(0.02)
            svc.mutate("g", inserts=([0], [target]))
            thread.join(timeout=30)
            assert "pinned" in results
            # The pinned query must reflect the pre-mutation epoch.
            assert np.array_equal(results["pinned"].values, baseline)
            # A fresh query sees the mutation.
            fresh = svc.query("g", "bfs", {"root": 0})
            assert np.isfinite(fresh.values[target])


class TestDeltaLogWiring:
    def test_mutations_logged_and_recoverable(self, sym, tmp_path):
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        with GraphService(registry, delta_log_dir=tmp_path) as svc:
            first = svc.query("g", "bfs", {"root": 0})
            target = unreached_vertex(first.values)
            svc.mutate("g", inserts=([0], [target]))
            svc.mutate("g", deletes=([0], [target]))
            entry = svc.registry.entry("g")
            expected = entry.graph.edges
        log = DeltaLog(tmp_path / "g.gmdelta")
        assert len(log) == 2
        recovered = log.apply_to(sym)
        assert recovered.epoch == 2
        assert np.array_equal(
            recovered.edges.rows, expected.rows
        ) and np.array_equal(recovered.edges.cols, expected.cols)

    def test_threshold_compaction_writes_fresh_snapshot(self, tmp_path):
        base = symmetrize(rmat_graph(scale=5, edge_factor=4, seed=2))
        registry = GraphRegistry()
        registry.add_graph("g", base)
        with GraphService(
            registry, delta_log_dir=tmp_path, compact_threshold=0.01
        ) as svc:
            rng = np.random.default_rng(0)
            n = base.n_vertices
            summary = svc.mutate(
                "g",
                inserts=(rng.integers(0, n, 32), rng.integers(0, n, 32)),
            )
            assert summary["compacted"]
            entry = svc.registry.entry("g")
            assert entry.epoch == 1
            assert not isinstance(entry.graph, DeltaGraph)
            assert entry.graph.snapshot_path is not None
            assert (tmp_path / "g-epoch1.gmsnap").exists()
            # The log was truncated at compaction.
            assert len(DeltaLog(tmp_path / "g.gmdelta")) == 0
            # Serving continues seamlessly on the compacted graph.
            assert svc.query("g", "bfs", {"root": 0}).values.shape == (n,)
            assert svc.stats()["mutations"]["compactions"] == 1

    def test_restart_recovers_logged_mutations(self, sym, tmp_path):
        """Acknowledged mutations must survive a service restart: the log
        replays over the base snapshot and epoch numbering resumes."""
        def make_service():
            registry = GraphRegistry()
            registry.add_graph("g", sym)
            return GraphService(registry, delta_log_dir=tmp_path)

        with make_service() as svc:
            baseline = svc.query("g", "bfs", {"root": 0})
            target = unreached_vertex(baseline.values)
            svc.mutate("g", inserts=([0], [target]))
            svc.mutate("g", inserts=([target], [0]))
            expected = svc.query("g", "bfs", {"root": 0}).values
        with make_service() as svc:
            entry = svc.registry.entry("g")
            assert entry.epoch == 2
            assert svc.stats()["mutations"]["recovered_batches"] == 2
            recovered = svc.query("g", "bfs", {"root": 0})
            assert np.array_equal(recovered.values, expected)
            # Epoch numbering resumes, not resets: the log stays linear.
            assert svc.mutate("g", inserts=([0], [1]))["epoch"] == 3
            epochs = [b.epoch for b in DeltaLog(
                tmp_path / "g.gmdelta").replay()]
            assert epochs == [1, 2, 3]

    def test_restart_recovers_compacted_snapshot(self, tmp_path):
        """After threshold compaction, a restart must pick up the
        compacted snapshot (the log was truncated) and keep its epoch."""
        base = symmetrize(rmat_graph(scale=5, edge_factor=4, seed=2))

        def make_service():
            registry = GraphRegistry()
            registry.add_graph("g", base)
            return GraphService(
                registry, delta_log_dir=tmp_path, compact_threshold=0.01
            )

        rng = np.random.default_rng(1)
        n = base.n_vertices
        with make_service() as svc:
            assert svc.mutate(
                "g", inserts=(rng.integers(0, n, 32), rng.integers(0, n, 32))
            )["compacted"]
            svc.mutate("g", inserts=([0], [1]))  # post-compaction, logged
            expected = svc.query("g", "bfs", {"root": 0}).values
            expected_edges = svc.registry.entry("g").graph.n_edges
        with make_service() as svc:
            entry = svc.registry.entry("g")
            assert entry.epoch == 2
            assert entry.graph.n_edges == expected_edges
            assert np.array_equal(
                svc.query("g", "bfs", {"root": 0}).values, expected
            )

    def test_memory_only_compaction(self, sym):
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        with GraphService(registry, compact_threshold=1e-9) as svc:
            summary = svc.mutate("g", inserts=([0], [1], [2.0]))
            assert summary["compacted"]
            entry = svc.registry.entry("g")
            assert isinstance(entry.graph, Graph)
            assert not isinstance(entry.graph, DeltaGraph)


class TestMutationEndpoint:
    @pytest.fixture()
    def server(self, sym, tmp_path):
        registry = GraphRegistry()
        registry.add_graph("g", sym)
        snapshot = tmp_path / "snap.gmsnap"
        save_snapshot(sym, snapshot, n_partitions=8, strategy="rows")
        registry.add_snapshot("snap", snapshot)
        service = GraphService(
            registry, policy=BatchPolicy(max_batch_k=4, max_wait_ms=5.0)
        )
        http_server = make_server(service, "127.0.0.1", 0)
        thread = threading.Thread(
            target=http_server.serve_forever, daemon=True
        )
        thread.start()
        yield http_server
        http_server.shutdown()
        http_server.server_close()
        service.close()

    def test_post_edges_roundtrip(self, server):
        status, before = _post(server, "/query/bfs", {"graph": "g", "root": 0})
        assert status == 200
        values = before["values"]
        target = next(i for i, v in enumerate(values) if v is None)
        status, summary = _post(
            server,
            "/graphs/g/edges",
            {"insert": [[0, target], [target, 0]]},
        )
        assert status == 200
        assert summary["epoch"] == 1 and summary["inserted"] == 2
        status, after = _post(server, "/query/bfs", {"graph": "g", "root": 0})
        assert status == 200
        assert after["values"][target] == 1.0

    def test_post_edges_on_snapshot_backed_graph(self, server):
        status, summary = _post(
            server,
            "/graphs/snap/edges",
            {"insert": [[0, 1, 2.0]], "delete": [[2, 3]]},
        )
        assert status == 200
        assert summary["epoch"] == 1

    def test_post_edges_error_mapping(self, server):
        status, _ = _post(server, "/graphs/missing/edges", {"insert": [[0, 1]]})
        assert status == 404
        status, body = _post(server, "/graphs/g/edges", {})
        assert status == 400 and "insert" in body["error"]
        status, _ = _post(server, "/graphs/g/edges", {"insert": [[0]]})
        assert status == 400
        status, _ = _post(server, "/graphs/g/edges", {"delete": [[0, 1, 2]]})
        assert status == 400
        status, _ = _post(server, "/graphs/g/edges", {"bogus": []})
        assert status == 400
        # Out-of-range vertex ids are the client's fault: 400, not 500.
        status, body = _post(
            server, "/graphs/g/edges", {"insert": [[0, 10**6]]}
        )
        assert status == 400
        # A lossy weight into an unweighted (int-valued) base: 400.
        status, body = _post(
            server, "/graphs/g/edges", {"insert": [[0, 1, 2.5]]}
        )
        assert status == 400 and "losslessly" in body["error"]
        # Non-integral / non-numeric endpoints must 400, never truncate
        # to a *different* edge than the client named.
        status, _ = _post(server, "/graphs/g/edges", {"insert": [[2.7, 3]]})
        assert status == 400
        status, _ = _post(server, "/graphs/g/edges", {"insert": [["4", 1]]})
        assert status == 400
        status, _ = _post(server, "/graphs/g/edges", {"delete": [[0, True]]})
        assert status == 400
        # Integral floats (JSON encoders that float everything) are fine.
        status, _ = _post(server, "/graphs/g/edges", {"insert": [[0.0, 2]]})
        assert status == 200

    def test_graphs_listing_shows_epoch(self, server):
        _post(server, "/graphs/g/edges", {"insert": [[0, 1]]})
        port = server.server_address[1]
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/graphs"
        ) as reply:
            listing = json.loads(reply.read())["graphs"]
        entry = next(e for e in listing if e["name"] == "g")
        assert entry["epoch"] >= 1
        assert entry["delta_edges"] >= 1
