"""Tests for both sparse vector representations (paper section 4.4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.vector.sparse_vector import (
    FLOAT64,
    INT64,
    OBJECT,
    BitvectorVector,
    SortedTuplesVector,
    ValueSpec,
    make_sparse_vector,
)

REPRS = [BitvectorVector, SortedTuplesVector]


class TestValueSpec:
    def test_scalar_spec(self):
        assert FLOAT64.is_scalar
        assert FLOAT64.allocate(3).shape == (3,)

    def test_vector_spec(self):
        spec = ValueSpec(np.float64, (4,))
        assert not spec.is_scalar
        assert spec.allocate(2).shape == (2, 4)

    def test_object_spec(self):
        arr = OBJECT.allocate(3)
        assert arr.dtype == object

    def test_bad_shape_raises(self):
        with pytest.raises(ShapeError):
            ValueSpec(np.float64, (0,))


@pytest.mark.parametrize("cls", REPRS)
class TestCommonBehaviour:
    def test_empty(self, cls):
        v = cls(10)
        assert v.nnz == 0
        assert len(v) == 10
        assert v.indices().size == 0

    def test_set_get(self, cls):
        v = cls(10)
        v.set(3, 1.5)
        assert v.get(3) == 1.5
        assert 3 in v
        assert 4 not in v
        assert v.nnz == 1

    def test_get_invalid_raises_keyerror(self, cls):
        v = cls(10)
        with pytest.raises(KeyError):
            v.get(5)

    def test_out_of_range_raises(self, cls):
        v = cls(10)
        with pytest.raises(IndexError):
            v.set(10, 1.0)
        with pytest.raises(IndexError):
            v.get(-1)

    def test_overwrite(self, cls):
        v = cls(5)
        v.set(2, 1.0)
        v.set(2, 9.0)
        assert v.get(2) == 9.0
        assert v.nnz == 1

    def test_indices_sorted(self, cls):
        v = cls(20)
        for i in (7, 1, 13, 4):
            v.set(i, float(i))
        assert v.indices().tolist() == [1, 4, 7, 13]

    def test_gather_in_order(self, cls):
        v = cls(20)
        for i in (7, 1, 13):
            v.set(i, float(i) * 2)
        got = v.gather(np.array([13, 1]))
        assert got.tolist() == [26.0, 2.0]

    def test_scatter(self, cls):
        v = cls(10)
        v.scatter(np.array([2, 5]), np.array([1.0, 2.0]))
        assert v.get(5) == 2.0
        assert v.nnz == 2

    def test_scatter_empty(self, cls):
        v = cls(10)
        v.scatter(np.array([], dtype=np.int64), np.array([]))
        assert v.nnz == 0

    def test_clear(self, cls):
        v = cls(10)
        v.set(1, 1.0)
        v.clear()
        assert v.nnz == 0
        assert 1 not in v

    def test_items(self, cls):
        v = cls(10)
        v.set(4, 8.0)
        v.set(2, 5.0)
        assert list(v.items()) == [(2, 5.0), (4, 8.0)]

    def test_to_dense(self, cls):
        v = cls(4)
        v.set(1, 3.0)
        dense = v.to_dense(fill=np.inf)
        assert dense[1] == 3.0
        assert np.isinf(dense[0])

    def test_vector_valued_entries(self, cls):
        spec = ValueSpec(np.float64, (3,))
        v = cls(5, spec)
        v.set(2, np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(v.get(2), [1.0, 2.0, 3.0])

    def test_negative_length_raises(self, cls):
        with pytest.raises(ShapeError):
            cls(-1)

    def test_repr(self, cls):
        assert "length=7" in repr(cls(7))


class TestObjectEntries:
    @pytest.mark.parametrize("cls", REPRS)
    def test_object_values(self, cls):
        v = cls(5, OBJECT)
        v.set(1, [10, 20])
        assert v.get(1) == [10, 20]


class TestBitvectorSpecific:
    def test_valid_mask_matches_indices(self):
        v = BitvectorVector(10)
        v.set(3, 1.0)
        mask = v.valid_mask()
        assert mask[3] and mask.sum() == 1

    def test_values_array_full_length(self):
        v = BitvectorVector(10)
        assert v.values.shape == (10,)

    def test_to_packed_bitvector(self):
        v = BitvectorVector(70)
        v.set(64, 1.0)
        packed = v.to_packed_bitvector()
        assert packed.to_indices().tolist() == [64]


class TestSortedTuplesSpecific:
    def test_out_of_order_inserts_resort(self):
        v = SortedTuplesVector(10, INT64)
        v.set(9, 9)
        v.set(1, 1)
        v.set(5, 5)
        assert v.indices().tolist() == [1, 5, 9]

    def test_gather_missing_raises(self):
        v = SortedTuplesVector(10)
        v.set(1, 1.0)
        with pytest.raises(KeyError):
            v.gather(np.array([2]))


def test_factory_selects_representation():
    assert isinstance(make_sparse_vector(5, use_bitvector=True), BitvectorVector)
    assert isinstance(
        make_sparse_vector(5, use_bitvector=False), SortedTuplesVector
    )


@given(
    length=st.integers(1, 200),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_representations_equivalent(length, data):
    """Both representations implement identical observable behaviour."""
    ops = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, length - 1),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=50,
        )
    )
    a = BitvectorVector(length)
    b = SortedTuplesVector(length)
    for i, val in ops:
        a.set(i, val)
        b.set(i, val)
    assert a.nnz == b.nnz
    assert np.array_equal(a.indices(), b.indices())
    idx = a.indices()
    assert np.allclose(a.gather(idx), b.gather(idx))
