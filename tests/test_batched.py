"""Batched multi-frontier engine: parity, convergence, kernels, caching.

The acceptance bar for the batched path is absolute: for BFS, SSSP and
personalized PageRank, **every lane** of a K=8 batched run must be
bitwise identical to the corresponding single-source sequential run, on
all three execution backends.  The SpMM kernels share no legitimate
source of divergence with the sequential engine — identity-masked lanes
fold through exact-identity operations and tile boundaries align to
destination groups — so the assertions are ``np.array_equal``, never
approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    bfs_multi_source,
    pagerank_personalized_batch,
    run_bfs,
    run_personalized_pagerank,
    run_sssp,
    sssp_landmarks,
)
from repro.algorithms.bfs import BFSProgram
from repro.algorithms.pagerank import PersonalizedPageRankProgram
from repro.core.engine import run_graph_programs_batched
from repro.core.graph_program import GraphProgram, SemiringProgram
from repro.core.options import KNOWN_BACKENDS, EngineOptions
from repro.core.semiring import MIN_PLUS, PLUS_TIMES
from repro.core.spmv import run_block_batch, spmm_fused
from repro.errors import ProgramError, ShapeError
from repro.exec.jit import jit_tier_available
from repro.graph.generators.rmat import rmat_graph
from repro.graph.graph import Graph
from repro.graph.preprocess import symmetrize
from repro.matrix.partition import PartitionedMatrix
from repro.vector.multi_frontier import MultiFrontier
from repro.vector.sparse_vector import FLOAT64, OBJECT, BitvectorVector

BACKEND_NAMES = list(KNOWN_BACKENDS)
ROOTS = [0, 3, 17, 42, 63, 77, 91, 100]  # K = 8


def _options(backend: str) -> EngineOptions:
    return EngineOptions(backend=backend, n_workers=2)


def _expected_backend(backend: str) -> str:
    """RunStats.backend records the executor that actually ran.

    Without numba the jit tiers substitute their NumPy fallbacks, and
    the stats honestly record the substitute's name.
    """
    if jit_tier_available():
        return backend
    return {"jit": "serial", "jit-threaded": "threaded"}.get(backend, backend)


@pytest.fixture(scope="module")
def rmat():
    return rmat_graph(scale=7, edge_factor=8, seed=11)


@pytest.fixture(scope="module")
def rmat_sym(rmat):
    return symmetrize(rmat)


class TestBatchSequentialParity:
    """Acceptance: every lane bitwise identical to its sequential run."""

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_bfs_lanes_match_sequential(self, rmat_sym, backend):
        batched = bfs_multi_source(rmat_sym, ROOTS, options=_options(backend))
        assert batched.run.backend == _expected_backend(backend)
        for lane, root in enumerate(ROOTS):
            ref = run_bfs(rmat_sym, root)
            assert np.array_equal(ref.distances, batched.lane(lane)), (
                f"BFS lane {lane} (root {root}) diverged on {backend}"
            )

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_sssp_lanes_match_sequential(self, rmat_sym, backend):
        batched = sssp_landmarks(rmat_sym, ROOTS, options=_options(backend))
        for lane, source in enumerate(ROOTS):
            ref = run_sssp(rmat_sym, source)
            assert np.array_equal(
                ref.distances.ravel(), batched.lane(lane)
            ), f"SSSP lane {lane} (source {source}) diverged on {backend}"

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_ppr_lanes_match_sequential(self, rmat, backend):
        batched = pagerank_personalized_batch(
            rmat, ROOTS, max_iterations=12, options=_options(backend)
        )
        for lane, source in enumerate(ROOTS):
            ref = run_personalized_pagerank(rmat, source, max_iterations=12)
            assert np.array_equal(ref.ranks, batched.lane(lane)), (
                f"PPR lane {lane} (source {source}) diverged on {backend}"
            )

    def test_nonuniform_lane_parameters_still_match(self, rmat):
        """Lanes with different constructor params fall back to the
        per-lane hooks and must still match sequential runs."""
        rs = [0.15, 0.25, 0.10, 0.5]
        sources = ROOTS[: len(rs)]
        from repro.algorithms.pagerank import inverse_out_degrees

        programs = [PersonalizedPageRankProgram(r=r) for r in rs]
        n, k = rmat.n_vertices, len(rs)
        properties = np.zeros((k, n, 3))
        properties[:, :, 1] = inverse_out_degrees(rmat)[None, :]
        active = np.ones((k, n), dtype=bool)
        for lane, s in enumerate(sources):
            properties[lane, s, 0] = 1.0
            properties[lane, s, 2] = 1.0
        run = run_graph_programs_batched(
            rmat, programs, properties, active,
            EngineOptions(max_iterations=8),
        )
        for lane, (s, r) in enumerate(zip(sources, rs)):
            ref = run_personalized_pagerank(rmat, s, r=r, max_iterations=8)
            assert np.array_equal(ref.ranks, run.properties[lane, :, 0])


class TestPerLaneConvergence:
    def test_lanes_converge_independently(self, rmat_sym):
        # An isolated-ish root converges in fewer supersteps than a hub.
        batched = bfs_multi_source(rmat_sym, ROOTS)
        per_lane = [s.n_supersteps for s in batched.run.lane_stats]
        assert max(per_lane) == batched.run.n_supersteps
        assert all(s.converged for s in batched.run.lane_stats)
        assert batched.run.converged
        # A lane records iterations only while it was live.
        assert min(per_lane) <= max(per_lane)

    def test_converged_lane_stops_sending(self, rmat_sym):
        batched = bfs_multi_source(rmat_sym, ROOTS)
        for stats in batched.run.lane_stats:
            final = stats.iterations[-1]
            # The last recorded superstep of a lane activates nobody.
            assert final.activated == 0

    def test_shared_sweep_cheaper_than_lane_sum(self, rmat_sym):
        """The batched run's shared edge count must be well under the
        sum of the lanes' sequential edge counts — that is the entire
        point of the SpMM path."""
        batched = bfs_multi_source(rmat_sym, ROOTS)
        sequential_edges = sum(
            run_bfs(rmat_sym, root).stats.total_edges_processed
            for root in ROOTS
        )
        assert batched.run.total_edges_processed < sequential_edges

    def test_iteration_budget_respected(self, rmat):
        batched = pagerank_personalized_batch(rmat, ROOTS, max_iterations=3)
        assert batched.run.n_supersteps == 3
        assert all(s.n_supersteps == 3 for s in batched.run.lane_stats)

    def test_aggregate_stats_recorded(self, rmat_sym):
        batched = bfs_multi_source(rmat_sym, ROOTS)
        run = batched.run
        assert run.kernel_totals(), "SpMM runs must record kernel choices"
        assert set(run.kernel_totals()) <= {"sparse-gather", "dense-pull"}
        densities = [it.frontier_density for it in run.iterations]
        assert all(0.0 <= d <= 1.0 for d in densities)
        assert any(d > 0 for d in densities)


class TestDriverValidation:
    def _bfs_state(self, graph, k=2):
        n = graph.n_vertices
        props = np.full((k, n), np.inf)
        active = np.zeros((k, n), dtype=bool)
        for lane in range(k):
            props[lane, lane] = 0.0
            active[lane, lane] = True
        return props, active

    def test_mixed_program_classes_rejected(self, rmat_sym):
        props, active = self._bfs_state(rmat_sym)
        with pytest.raises(ProgramError, match="one program class"):
            run_graph_programs_batched(
                rmat_sym,
                [BFSProgram(), PersonalizedPageRankProgram()],
                props,
                active,
            )

    def test_bad_property_shape_rejected(self, rmat_sym):
        props, active = self._bfs_state(rmat_sym)
        with pytest.raises(ProgramError, match="lane_properties"):
            run_graph_programs_batched(
                rmat_sym, [BFSProgram(), BFSProgram()], props[:, :-1], active
            )

    def test_unbatchable_program_rejected(self, rmat_sym):
        from repro.algorithms.triangle_count import NeighborGatherProgram

        props = np.zeros((2, rmat_sym.n_vertices))
        active = np.ones((2, rmat_sym.n_vertices), dtype=bool)
        with pytest.raises(ProgramError, match="batched"):
            run_graph_programs_batched(
                rmat_sym,
                [NeighborGatherProgram(), NeighborGatherProgram()],
                props,
                active,
            )

    def test_uncertified_identity_program_rejected(self, rmat_sym):
        """Regression: an additive program whose process hook does NOT
        absorb a zero message (messages + edge_values) must not sneak
        onto the identity-masked SpMM path via np.add's own identity —
        silent-lane zeros would become real edge contributions."""

        class PlusPlus(GraphProgram):
            message_spec = result_spec = property_spec = FLOAT64
            reduce_ufunc = np.add  # ufunc identity 0 exists, but the
            # process hook maps 0 -> edge_value: no certification.

            def send_message_batch(self, props, vertices):
                return props

            def process_message_batch(self, messages, edge_values, dst_props):
                return messages + edge_values

            def apply_batch(self, reduced, props):
                return reduced

        program = PlusPlus()
        assert program.batch_reduce_identity() is None
        assert not program.supports_batched()
        props = np.zeros((2, rmat_sym.n_vertices))
        active = np.ones((2, rmat_sym.n_vertices), dtype=bool)
        with pytest.raises(ProgramError, match="batched"):
            run_graph_programs_batched(
                rmat_sym, [PlusPlus(), PlusPlus()], props, active
            )

    def test_non_fused_options_rejected(self, rmat_sym):
        props, active = self._bfs_state(rmat_sym)
        with pytest.raises(ProgramError, match="fused"):
            run_graph_programs_batched(
                rmat_sym,
                [BFSProgram(), BFSProgram()],
                props,
                active,
                EngineOptions(fused=False),
            )

    def test_empty_program_list_rejected(self, rmat_sym):
        with pytest.raises(ProgramError):
            run_graph_programs_batched(
                rmat_sym, [], np.zeros((0, rmat_sym.n_vertices)),
                np.zeros((0, rmat_sym.n_vertices), dtype=bool),
            )

    def test_inputs_not_mutated(self, rmat_sym):
        props, active = self._bfs_state(rmat_sym)
        props_before = props.copy()
        active_before = active.copy()
        run_graph_programs_batched(
            rmat_sym, [BFSProgram(), BFSProgram()], props, active
        )
        assert np.array_equal(props, props_before)
        assert np.array_equal(active, active_before)


class TestMultiFrontier:
    def test_identity_fill_maintained(self):
        mf = MultiFrontier(6, 3, FLOAT64, fill=np.inf)
        assert np.all(np.isinf(mf.values))
        mf.scatter_lane(1, np.array([2, 4]), np.array([1.0, 2.0]))
        assert mf.values[1, 2] == 1.0
        assert mf.lane_indices(1).tolist() == [2, 4]
        mf.clear()
        assert np.all(np.isinf(mf.values))
        assert mf.lane_nnz().tolist() == [0, 0, 0]

    def test_any_mask_is_lane_union(self):
        mf = MultiFrontier(5, 2)
        mf.scatter_lane(0, np.array([1]), np.array([7.0]))
        mf.scatter_lane(1, np.array([3]), np.array([8.0]))
        assert mf.any_mask().tolist() == [False, True, False, True, False]

    def test_scatter_block_respects_mask(self):
        mf = MultiFrontier(4, 2)
        idx = np.array([0, 2])
        values = np.array([[1.0, 2.0], [3.0, 4.0]])
        mask = np.array([[True, False], [False, True]])
        mf.scatter_block(idx, values, mask)
        assert mf.valid_mask()[0, 0] and not mf.valid_mask()[0, 2]
        assert mf.valid_mask()[1, 2] and not mf.valid_mask()[1, 0]
        assert mf.values[0, 0] == 1.0 and mf.values[1, 2] == 4.0

    def test_set_from_mask_restores_nothing_for_unmasked(self):
        mf = MultiFrontier(3, 2, fill=0.0)
        mask = np.array([[True, False, True], [False, False, False]])
        vals = np.full((2, 3), 9.0)
        mf.set_from_mask(mask, vals)
        assert mf.values[0].tolist() == [9.0, 0.0, 9.0]
        assert np.array_equal(mf.valid_mask(), mask)

    def test_object_spec_rejected(self):
        with pytest.raises(ShapeError):
            MultiFrontier(4, 2, OBJECT)

    def test_bad_lane_count_rejected(self):
        with pytest.raises(ShapeError):
            MultiFrontier(4, 0)


def _multi_vs_single_spmv(coo_blocks, program, n, lanes):
    """Drive spmm_fused directly and compare per lane against spmv."""
    from repro.core.spmv import spmv_fused
    from repro.vector.dense import PropertyArray

    k = len(lanes)
    x = MultiFrontier(n, k, fill=program.batch_reduce_identity())
    for lane, entries in enumerate(lanes):
        for i, v in entries:
            x.scatter_lane(lane, np.array([i]), np.array([v]))
    y = MultiFrontier(n, k)
    props = np.zeros((k, n))
    spmm_fused(coo_blocks, x, y, program, props)
    for lane, entries in enumerate(lanes):
        xs = BitvectorVector(n)
        for i, v in entries:
            xs.set(i, v)
        ys = BitvectorVector(n)
        spmv_fused(
            coo_blocks, xs, ys, program, PropertyArray(n, FLOAT64)
        )
        assert np.array_equal(ys.indices(), y.lane_indices(lane))
        idx = ys.indices()
        assert np.array_equal(ys.values[idx], y.values[lane, idx])


class TestSpMMKernels:
    def test_plus_times_generic_sent_path(self):
        """SemiringProgram leaves batch_received_by_value False, so the
        kernel must derive received masks from gathered sent masks."""
        from repro.matrix.coo import COOMatrix

        rng = np.random.default_rng(5)
        n = 40
        src = rng.integers(0, n, 160)
        dst = rng.integers(0, n, 160)
        coo = COOMatrix((n, n), dst, src, rng.random(160)).deduplicated("last")
        blocks = PartitionedMatrix.from_coo(coo, 3)
        program = SemiringProgram(PLUS_TIMES)
        assert program.supports_batched()
        assert not program.batch_received_by_value
        lanes = [
            [(1, 2.0), (7, 1.5)],
            [(i, float(i + 1)) for i in range(n)],  # full lane
            [],                                     # silent lane
        ]
        _multi_vs_single_spmv(blocks, program, n, lanes)

    def test_min_plus_masked_lanes(self):
        from repro.matrix.coo import COOMatrix

        rng = np.random.default_rng(9)
        n = 30
        src = rng.integers(0, n, 120)
        dst = rng.integers(0, n, 120)
        coo = COOMatrix((n, n), dst, src, rng.random(120)).deduplicated("last")
        blocks = PartitionedMatrix.from_coo(coo, 2)
        program = SemiringProgram(MIN_PLUS)
        lanes = [[(0, 0.0)], [(3, 1.0), (9, 0.5)]]
        _multi_vs_single_spmv(blocks, program, n, lanes)

    def test_saturated_identity_values_survive_batched(self):
        """The dense-frontier identity hazard, K-lane edition: a real
        reduced value equal to the masking identity must not be dropped
        for programs without the by-value certification."""
        from repro.matrix.coo import COOMatrix

        class SaturatingMin(SemiringProgram):
            CAP = 8.0
            reduce_identity = CAP

            def __init__(self):
                super().__init__(MIN_PLUS)

            def process_message(self, message, edge_value, dst_prop):
                return min(message + edge_value, self.CAP)

            def process_message_batch(self, messages, edge_values, dst_props):
                return np.minimum(messages + edge_values, self.CAP)

        n = 90
        src = np.concatenate([
            np.zeros(40, dtype=np.int64),
            np.ones(40, dtype=np.int64),
            np.array([2], dtype=np.int64),
        ])
        dst = np.concatenate([
            np.arange(3, 43, dtype=np.int64),
            np.arange(43, 83, dtype=np.int64),
            np.array([83], dtype=np.int64),
        ])
        coo = COOMatrix((n, n), dst, src, np.ones(src.shape[0]))
        blocks = PartitionedMatrix.from_coo(coo, 1)
        program = SaturatingMin()
        assert not program.batch_received_by_value
        # Lane 0 saturates everything it sends; lane 1 is silent.
        lanes = [[(0, SaturatingMin.CAP - 0.5), (1, SaturatingMin.CAP - 0.5)], []]
        _multi_vs_single_spmv(blocks, program, n, lanes)

    def test_empty_and_dead_blocks(self):
        graph = Graph.from_edges(
            10, np.array([0, 1]), np.array([1, 2])
        )
        view = graph.out_partitions(4, "rows")
        x = MultiFrontier(10, 2, fill=0.0)
        program = SemiringProgram(PLUS_TIMES)
        props = np.zeros((2, 10))
        # Empty frontier: every block reports zero work, no kernel.
        for p, block in enumerate(view):
            result = run_block_batch(
                p, block, x.valid_mask(), x.values, program, props
            )
            assert result.edges == 0 and result.unique_dst is None

    def test_batch_only_lane_program(self):
        """A program with only the batch surface must run on the SpMM
        path (the scalar kernel is never selected there)."""

        class BatchOnly(GraphProgram):
            message_spec = result_spec = property_spec = FLOAT64
            reduce_ufunc = np.add
            # 0 * edge_value == 0: identity absorption certified.
            reduce_identity = 0.0

            def send_message_batch(self, props, vertices):
                return props

            def process_message_batch(self, messages, edge_values, dst_props):
                return messages * edge_values

            def apply_batch(self, reduced, props):
                return reduced

        n = 50
        src = np.arange(n - 1, dtype=np.int64)
        graph = Graph.from_edges(n, src, src + 1)
        props = np.ones((2, n))
        props[0, 0] = 2.0
        active = np.zeros((2, n), dtype=bool)
        active[0, 0] = True   # single-vertex frontier: scalar territory
        active[1, 5] = True
        run = run_graph_programs_batched(
            graph,
            [BatchOnly(), BatchOnly()],
            props,
            active,
            EngineOptions(max_iterations=3),
        )
        assert run.n_supersteps == 3
        assert set(run.kernel_totals()) == {"sparse-gather"}
        assert run.properties[0, 3] == 2.0


class TestSnapshotCacheWarm:
    def test_batched_run_reuses_mmap_views_without_rebuild(
        self, rmat_sym, tmp_path, monkeypatch
    ):
        """Satellite: a warm snapshot cache must feed the batched driver
        mmap'd DCSC views — no re-partitioning on the second run."""
        cache = tmp_path / "view-cache"
        options = EngineOptions(snapshot_cache=str(cache))
        edges = rmat_sym.edges
        # Fresh graphs on both sides: the module fixture already holds
        # in-memory views, which would satisfy the lookup before the
        # disk cache ever gets exercised.
        cold_graph = Graph.from_edges(
            rmat_sym.n_vertices, edges.rows, edges.cols, edges.vals,
            dedup=False,
        )
        cold = bfs_multi_source(cold_graph, ROOTS[:4], options=options)
        assert cache.exists() and list(cache.glob("*.gmsnap"))

        # Same edges, fresh Graph: only the on-disk cache can satisfy it.
        fresh = Graph.from_edges(
            rmat_sym.n_vertices, edges.rows, edges.cols, edges.vals,
            dedup=False,
        )

        def boom(*args, **kwargs):
            raise AssertionError(
                "partition rebuild on a warm snapshot cache"
            )

        monkeypatch.setattr(PartitionedMatrix, "from_coo", boom)
        warm = bfs_multi_source(fresh, ROOTS[:4], options=options)
        assert np.array_equal(cold.values, warm.values)
        view = fresh.peek_partitions(
            "out", options.n_partitions, options.partition_strategy
        )
        assert view is not None and view.snapshot_path is not None


class TestDegenerateSingleLane:
    """K=1 is a supported batch and bitwise identical to sequential.

    The serving scheduler dispatches partial batches on timeout, so a
    lone request becomes a K=1 batched run; this pins down that the
    degenerate batch takes the same SpMM machinery through the exact
    sequential results — distances, ranks, convergence and superstep
    counts alike.
    """

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_k1_bfs_bitwise_matches_sequential(self, rmat_sym, backend):
        root = ROOTS[2]
        ref = run_bfs(rmat_sym, root)
        batched = bfs_multi_source(rmat_sym, [root], options=_options(backend))
        assert batched.run.n_lanes == 1
        assert np.array_equal(ref.distances, batched.lane(0))
        lane_stats = batched.run.lane_stats[0]
        assert lane_stats.converged and ref.stats.converged
        assert lane_stats.n_supersteps == ref.stats.n_supersteps
        assert lane_stats.total_messages == ref.stats.total_messages

    def test_k1_sssp_bitwise_matches_sequential(self, rmat_sym):
        source = ROOTS[4]
        ref = run_sssp(rmat_sym, source)
        batched = sssp_landmarks(rmat_sym, [source])
        assert np.array_equal(ref.distances, batched.lane(0))

    def test_k1_ppr_bitwise_matches_sequential(self, rmat):
        source = ROOTS[1]
        ref = run_personalized_pagerank(rmat, source, max_iterations=9)
        batched = pagerank_personalized_batch(
            rmat, [source], max_iterations=9
        )
        assert np.array_equal(ref.ranks, batched.lane(0))
        assert batched.run.total_edges_processed == (
            ref.stats.total_edges_processed
        )
