"""Benchmark harness tests: case preparation, grid runs, DNF handling."""

import numpy as np
import pytest

from repro.bench.cases import clear_cache, prepare_case, run_params
from repro.bench.harness import CellResult, run_cell, run_grid
from repro.bench.tables import format_table, grid_table
from repro.errors import BenchmarkError
from repro.frameworks.combblas_like import CombBLASLikeFramework
from repro.frameworks.registry import make_framework


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestPrepareCase:
    def test_bfs_case_is_symmetric(self):
        case = prepare_case("facebook", "bfs")
        coo = case.graph.edges
        keys = set(zip(coo.rows.tolist(), coo.cols.tolist()))
        assert all((b, a) in keys for a, b in keys)

    def test_tc_case_is_dag(self):
        case = prepare_case("rmat_20", "tc")
        assert np.all(case.graph.edges.rows < case.graph.edges.cols)

    def test_cf_needs_bipartite(self):
        with pytest.raises(BenchmarkError):
            prepare_case("facebook", "cf")

    def test_unknown_algorithm(self):
        with pytest.raises(BenchmarkError):
            prepare_case("facebook", "kcore")

    def test_graph_cached_across_calls(self):
        a = prepare_case("facebook", "pagerank")
        b = prepare_case("facebook", "pagerank")
        assert a.graph is b.graph

    def test_params_merged(self):
        case = prepare_case("facebook", "pagerank", {"iterations": 2})
        assert case.params["iterations"] == 2

    def test_cf_params_carry_n_users(self):
        case = prepare_case("netflix", "cf")
        assert case.params["n_users"] == case.info.n_users

    def test_run_params_split(self):
        case = prepare_case("flickr", "sssp", {"source": 3})
        args, kwargs = run_params(case)
        assert args == (3,)
        assert "source" not in kwargs


class TestRunCell:
    def test_completed_cell(self):
        case = prepare_case("facebook", "pagerank", {"iterations": 2})
        cell = run_cell(make_framework("graphmat"), case)
        assert cell.completed
        assert cell.seconds > 0
        assert cell.metric_seconds() is not None
        # PageRank reports time per iteration.
        assert cell.metric_seconds() < cell.seconds

    def test_dnf_cell(self):
        case = prepare_case("rmat_20", "tc")
        fw = CombBLASLikeFramework(spgemm_limit=1)
        cell = run_cell(fw, case)
        assert not cell.completed
        assert cell.metric_seconds() is None
        assert "memory cap" in cell.dnf_reason


class TestGrid:
    def test_grid_and_speedups(self):
        grid = run_grid(
            "pagerank",
            ["facebook"],
            ["graphlab", "graphmat"],
            {"iterations": 2},
        )
        assert grid.cell("graphmat", "facebook").completed
        speedups = grid.speedup_over("graphlab")
        assert speedups["facebook"] > 1.0
        assert grid.geomean_speedup("graphlab") > 1.0

    def test_grid_table_renders(self):
        grid = run_grid(
            "pagerank", ["facebook"], ["graphlab", "graphmat"], {"iterations": 2}
        )
        text = grid_table(grid, "test table")
        assert "graphmat" in text
        assert "GraphMat vs graphlab" in text


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["a", "1"], ["bb", "22"]], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1]
        assert lines[2].startswith("---")
