"""Legacy setup shim.

This repository is developed in an offline environment without the
``wheel`` package, so ``pip install -e .`` must use the legacy
``setup.py develop`` code path; all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "GraphMat (VLDB 2015) reproduction: vertex programs on a "
        "generalized sparse-matrix backend"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={
        # Compiled-kernel tier (EngineOptions backend="jit"/"jit-threaded");
        # without it those backends fall back to the NumPy executors with a
        # logged warning.  See docs/KERNELS.md.
        "jit": ["numba>=0.59"],
    },
    entry_points={
        "console_scripts": [
            "repro-convert=repro.store.cli:main",
            "repro-serve=repro.serve.cli:main",
        ],
    },
)
