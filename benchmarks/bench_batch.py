"""Batched multi-frontier comparison: K concurrent queries vs K sequential.

Emits ``BENCH_batch.json`` (repo root by default) recording wall-clock,
edges/sec and speedup for batched K-lane BFS and personalized PageRank
against the same K queries run sequentially, on a Graph500 R-MAT graph.
The full-scale record (scale 16, K=16) carries the PR's acceptance
claim: batched >= 3x sequential for both workloads.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_batch.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_batch.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.batch import bench_batch, summarize, write_batch_record

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_batch.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--lanes", type=int, default=16,
                        help="number of concurrent queries (K)")
    parser.add_argument("--iterations", type=int, default=10,
                        help="personalized PageRank supersteps")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_batch(
        scale=args.scale,
        edge_factor=args.edge_factor,
        n_lanes=args.lanes,
        pr_iterations=args.iterations,
        repeats=args.repeats,
    )
    path = write_batch_record(record, args.out)
    print(summarize(record))
    print(f"\nwrote {path}")
    return 0


def test_batch_bench_smoke(tmp_path):
    """Smoke run at a small scale: the record must be complete, every
    lane's parity is checked inside bench_batch, and batching must not
    lose to sequential even at toy sizes (the machine-independent
    invariant; the 3x acceptance bar applies to the scale-16 record)."""
    record = bench_batch(scale=10, edge_factor=8, n_lanes=8,
                         pr_iterations=5, repeats=1)
    out = write_batch_record(record, tmp_path / "BENCH_batch.json")
    assert out.exists()
    for workload in ("bfs", "ppr"):
        cell = record[workload]
        assert cell["sequential"]["lane_edges"] > 0
        assert cell["batched"]["shared_edges"] > 0
        assert cell["sweep_amortization"] > 1.0
        assert cell["speedup"] > 1.0
    assert not record["acceptance"]["at_acceptance_scale"]


if __name__ == "__main__":
    sys.exit(main())
