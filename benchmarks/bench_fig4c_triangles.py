"""Figure 4(c): Triangle counting across frameworks.

Paper datasets: LiveJournal, Facebook, Wikipedia, RMAT scale 20 (all
DAG-oriented).  Paper result: CombBLAS "fails to complete for real-world
datasets" (memory-blown SpGEMM intermediates) and is ~36x slower on the
synthetic graph; GraphLab is ~1.5x slower than GraphMat; Galois ~20%
faster.
"""

from repro.bench import grid_table, prepare_case, run_grid, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework

DATASETS = ["livejournal", "facebook", "wikipedia", "rmat_20"]


def test_fig4c_grid_shape(benchmark, pedantic_kwargs):
    grid = run_grid("tc", DATASETS, list(COMPARED_FRAMEWORKS))
    table = grid_table(grid, "Figure 4(c) - Triangle counting total time")
    print("\n" + table)
    write_result("fig4c_triangles", table)
    # All completed runs agree on the triangle count.
    for dataset in DATASETS:
        counts = {
            grid.cell(fw, dataset).value
            for fw in COMPARED_FRAMEWORKS
            if grid.cell(fw, dataset).completed
        }
        assert len(counts) == 1
    # The paper's headline: CombBLAS's SpGEMM intermediates exceed memory
    # on the (skewed) real-world graphs but not the TC-tuned synthetic one.
    assert not grid.cell("combblas", "livejournal").completed
    assert not grid.cell("combblas", "wikipedia").completed
    assert grid.cell("combblas", "rmat_20").completed
    assert grid.geomean_speedup("graphlab") > 1.0
    _bench_graphmat(benchmark, pedantic_kwargs, "rmat_20", "tc", None)


def _bench_graphmat(benchmark, pedantic_kwargs, dataset, algorithm, params):
    """Attach a GraphMat timing to the grid test so the comparison tables
    regenerate under ``pytest --benchmark-only`` as well."""
    case = prepare_case(dataset, algorithm, params)
    framework = make_framework("graphmat")
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
