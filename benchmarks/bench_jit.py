"""Compiled-kernel tier: threaded NumPy vs jit vs jit-threaded.

Emits ``BENCH_jit.json`` (repo root by default) recording PageRank
time-per-iteration and BFS wall-clock for the best NumPy schedule
(``threaded``) against the Numba tier's two backends, plus the tier's
hard contracts: bitwise parity with the serial reference and (with
numba installed) ``jit-*`` kernel attribution in the run stats.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_jit.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_jit.py --benchmark-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.jit import acceptance_check, bench_jit, summarize, write_jit_record

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_jit.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=5,
                        help="PageRank supersteps per run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for all measured backends")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_jit(
        scale=args.scale,
        edge_factor=args.edge_factor,
        pr_iterations=args.iterations,
        repeats=args.repeats,
        n_workers=args.workers,
    )
    path = write_jit_record(record, args.out)
    print(summarize(record))
    failures = acceptance_check(record)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}")
    print(f"\nwrote {path}")
    return 1 if failures else 0


def test_jit_bench_smoke(tmp_path):
    """Smoke run at a small scale: the record must be complete, parity
    must hold bitwise, and (when numba is installed) the jit backends
    must attribute work to compiled kernels — the machine-independent
    acceptance invariants."""
    record = bench_jit(scale=10, edge_factor=8, pr_iterations=3, repeats=1)
    out = write_jit_record(record, tmp_path / "BENCH_jit.json")
    assert out.exists()
    for workload in ("pagerank", "bfs"):
        for config in ("threaded", "jit", "jit-threaded"):
            assert record[workload][config]["edges_processed"] > 0
    assert acceptance_check(record) == []


if __name__ == "__main__":
    sys.exit(main())
