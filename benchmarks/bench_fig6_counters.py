"""Figure 6: performance-counter analysis normalized to GraphMat.

Paper setup: instructions, stall cycles, read bandwidth and IPC for PR,
TC, CF and SSSP, averaged over graphs, normalized to GraphMat.  Paper
finding: "compared to GraphMat, GraphLab and CombBLAS execute
significantly more instructions and have more stall cycles".

Per DESIGN.md, the counters are abstract events recorded during real
execution, converted through one shared machine model.
"""

from repro.bench import format_table, prepare_case, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework
from repro.perf.machine import derive_report, graph_working_set_bytes

CASES = {
    "pagerank": ("facebook", {"iterations": 3}),
    "tc": ("rmat_20", None),
    "cf": ("netflix", {"iterations": 2}),
    "sssp": ("flickr", None),
}

METRICS = ("instructions", "stall_cycles", "read_bandwidth", "ipc")


def _reports(algorithm, dataset, params):
    case = prepare_case(dataset, algorithm, params)
    args, kwargs = run_params(case)
    working_set = graph_working_set_bytes(
        case.graph.n_vertices, case.graph.n_edges
    )
    reports = {}
    for name in COMPARED_FRAMEWORKS:
        framework = make_framework(name)
        try:
            _, record = framework.run(
                case.algorithm, case.graph, *args, **kwargs
            )
        except Exception:
            continue  # DNF frameworks simply drop out of the panel
        reports[name] = derive_report(record.counters, working_set)
    return reports


def test_fig6_counters_normalized(benchmark, pedantic_kwargs):
    tables = []
    for algorithm, (dataset, params) in CASES.items():
        reports = _reports(algorithm, dataset, params)
        base = reports["graphmat"]
        rows = []
        for name, report in reports.items():
            ratios = report.normalized_to(base)
            rows.append(
                [name] + [f"{ratios[m]:.2f}" for m in METRICS]
            )
        table = format_table(
            ["framework"] + list(METRICS),
            rows,
            title=f"Figure 6 ({algorithm}/{dataset}) - normalized to GraphMat",
        )
        tables.append(table)
        ratios = {
            name: reports[name].normalized_to(base) for name in reports
        }
        # Paper shape: GraphLab executes far more instructions and stalls
        # far more than GraphMat on every algorithm.
        assert ratios["graphlab"]["instructions"] > 2.0, algorithm
        assert ratios["graphlab"]["stall_cycles"] > 1.0, algorithm
        # CombBLAS also burns more instructions than GraphMat.
        if "combblas" in ratios:
            assert ratios["combblas"]["instructions"] > 1.0, algorithm
    output = "\n\n".join(tables)
    print("\n" + output)
    write_result("fig6_counters", output)
    benchmark.pedantic(
        lambda: _reports("pagerank", "facebook", {"iterations": 2}),
        **pedantic_kwargs,
    )


def test_fig6_derive_report_timing(benchmark, pedantic_kwargs):
    case = prepare_case("facebook", "pagerank", {"iterations": 2})
    args, kwargs = run_params(case)
    framework = make_framework("graphmat")
    _, record = framework.run(case.algorithm, case.graph, *args, **kwargs)
    ws = graph_working_set_bytes(case.graph.n_vertices, case.graph.n_edges)
    benchmark.pedantic(
        lambda: derive_report(record.counters, ws), **pedantic_kwargs
    )
