"""Serving comparison: micro-batched concurrent queries vs no batching.

Emits ``BENCH_serve.json`` (repo root by default) recording throughput,
p50/p99 latency, achieved mean batch size and cache hit rate for a
closed-loop mixed BFS/SSSP/personalized-PageRank load against the
``repro.serve`` query service: no batching (``max_batch_k=1`` per
request), micro-batched, micro-batched with the full observability
stack attached (``ServeTelemetry``: metrics + traces + profile hook),
and micro-batched with the result cache on a repeat-heavy workload.
Every response of the timed unbatched and batched phases is verified
bitwise against a sequential reference run.  The full-scale record
(scale 16) carries the PR's acceptance claims: batched >= 3x unbatched
throughput, and instrumented >= 0.95x batched throughput.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.serve import bench_serve, summarize, write_serve_record

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--lanes", type=int, default=16,
                        help="max queries per engine run (K)")
    parser.add_argument("--iterations", type=int, default=10,
                        help="personalized PageRank supersteps")
    parser.add_argument("--per-kind", type=int, default=32,
                        help="distinct queries per kind in the timed stream")
    parser.add_argument("--clients", type=int, default=48,
                        help="closed-loop client threads")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="scheduler dispatch window")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_serve(
        scale=args.scale,
        edge_factor=args.edge_factor,
        n_lanes=args.lanes,
        pr_iterations=args.iterations,
        per_kind=args.per_kind,
        n_clients=args.clients,
        max_wait_ms=args.max_wait_ms,
    )
    path = write_serve_record(record, args.out)
    print(summarize(record))
    print(f"\nwrote {path}")
    return 0


def test_serve_bench_smoke(tmp_path):
    """Small-scale smoke run: the record must be complete, every timed
    response parity-checked against its sequential reference, batching
    must not lose to no-batching even at toy sizes, and the repeat-heavy
    cached phase must actually hit the cache (the machine-independent
    invariants; the 3x acceptance bar applies to the scale-16 record)."""
    record = bench_serve(
        scale=10, edge_factor=8, n_lanes=8, pr_iterations=5,
        per_kind=8, n_clients=16, cache_repeats=4,
    )
    out = write_serve_record(record, tmp_path / "BENCH_serve.json")
    assert out.exists()
    for phase in ("unbatched", "unbatched_service", "batched",
                  "instrumented"):
        cell = record[phase]
        assert cell["parity_checked"] == cell["requests"]
        assert cell["cached_responses"] == 0
        assert cell["p50_ms"] > 0.0
        assert cell["p99_ms"] >= cell["p50_ms"]
    assert record["unbatched"]["mean_batch_k"] == 1.0
    assert record["unbatched_service"]["mean_batch_k"] == 1.0
    assert record["batched"]["mean_batch_k"] > 1.0
    assert record["instrumented"]["mean_batch_k"] > 1.0
    assert record["speedup"]["batched_vs_unbatched"] > 1.0
    assert record["overhead"]["instrumented_throughput_ratio"] > 0.0
    assert "meets_overhead_target" in record["acceptance"]
    assert record["cached"]["hit_rate"] > 0.25
    assert not record["acceptance"]["at_acceptance_scale"]


if __name__ == "__main__":
    sys.exit(main())
