"""Figure 4(a): PageRank time per iteration across frameworks.

Paper datasets: LiveJournal, Facebook, Wikipedia, RMAT scale 23.
Paper result: GraphMat 4-11x faster than GraphLab (avg 7.5x), 2-4x faster
than CombBLAS, 1.5-4x faster than Galois.
"""

from repro.bench import grid_table, prepare_case, run_grid, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework

DATASETS = ["livejournal", "facebook", "wikipedia", "rmat_23"]
PARAMS = {"iterations": 3}


def test_fig4a_grid_shape(benchmark, pedantic_kwargs):
    grid = run_grid("pagerank", DATASETS, list(COMPARED_FRAMEWORKS), PARAMS)
    table = grid_table(grid, "Figure 4(a) - PageRank time/iteration")
    print("\n" + table)
    write_result("fig4a_pagerank", table)
    # Shape claims from the paper that must hold.
    for dataset in DATASETS:
        speedups = grid.speedup_over("graphlab")
        assert speedups[dataset] > 1.0, f"GraphLab beat GraphMat on {dataset}"
    assert grid.geomean_speedup("graphlab") > 2.0
    assert grid.geomean_speedup("combblas") > 1.0
    _bench_graphmat(benchmark, pedantic_kwargs, "facebook", "pagerank", PARAMS)


def _bench_graphmat(benchmark, pedantic_kwargs, dataset, algorithm, params):
    """Attach a GraphMat timing to the grid test so the comparison tables
    regenerate under ``pytest --benchmark-only`` as well."""
    case = prepare_case(dataset, algorithm, params)
    framework = make_framework("graphmat")
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
