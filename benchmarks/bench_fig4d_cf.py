"""Figure 4(d): Collaborative filtering time per iteration.

Paper datasets: Netflix, synthetic bipartite.  Paper result: GraphMat ~7x
faster than GraphLab, 4.7x faster than CombBLAS, 1.5x faster than Galois.
"""

from repro.bench import grid_table, prepare_case, run_grid, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework

DATASETS = ["netflix", "synthetic_cf"]
PARAMS = {"iterations": 2}


def test_fig4d_grid_shape(benchmark, pedantic_kwargs):
    grid = run_grid("cf", DATASETS, list(COMPARED_FRAMEWORKS), PARAMS)
    table = grid_table(grid, "Figure 4(d) - CF time/iteration (GD, k=8)")
    print("\n" + table)
    write_result("fig4d_cf", table)
    assert grid.geomean_speedup("graphlab") > 1.0
    # All GD frameworks converge to identical factors.
    import numpy as np

    for dataset in DATASETS:
        base = grid.cell("graphmat", dataset).value
        for fw in ("graphlab", "combblas", "galois"):
            assert np.allclose(grid.cell(fw, dataset).value, base, rtol=1e-8)
    _bench_graphmat(benchmark, pedantic_kwargs, "netflix", "cf", PARAMS)


def _bench_graphmat(benchmark, pedantic_kwargs, dataset, algorithm, params):
    """Attach a GraphMat timing to the grid test so the comparison tables
    regenerate under ``pytest --benchmark-only`` as well."""
    case = prepare_case(dataset, algorithm, params)
    framework = make_framework("graphmat")
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
