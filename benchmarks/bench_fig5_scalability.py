"""Figure 5: multicore scalability of the four frameworks (simulated).

Paper setup: PageRank on Facebook and SSSP on Flickr, 1-24 cores.  Paper
result: GraphMat scales 13-15x at 24 cores; GraphLab ~8x; CombBLAS 2-6x
(square process grid: only 16 of 24 cores usable); Galois 6-12x.

Per the substitution table in DESIGN.md, scaling is simulated: each
framework's *measured* per-superstep work-unit distribution (partitions,
vertex tasks, grid blocks) is scheduled onto T model cores under that
framework's scheduling policy and bandwidth model.
"""

import numpy as np

from repro.bench import format_table, prepare_case, run_params, write_result
from repro.bench.paper import FIG5_SPEEDUP_AT_24
from repro.core.options import EngineOptions
from repro.frameworks.graphmat import GraphMatFramework
from repro.frameworks.registry import make_framework
from repro.perf.parallel_model import speedup_curve

THREADS = [1, 2, 4, 8, 12, 16, 20, 24]

_LABELS = {
    "graphmat": "GraphMat",
    "graphlab": "GraphLab",
    "combblas": "CombBLAS",
    "galois": "Galois",
}


def _framework_for_scaling(name):
    if name == "graphmat":
        # Over-partition so the dynamic scheduler has units to balance
        # (the paper's nthreads*8 partitions at 24 threads).
        return GraphMatFramework(
            EngineOptions(
                n_threads=24,
                partitions_per_thread=8,
                record_partition_stats=True,
            )
        )
    return make_framework(name)


def _curves(algorithm: str, dataset: str, params=None):
    case = prepare_case(dataset, algorithm, params)
    args, kwargs = run_params(case)
    curves = {}
    for name, label in _LABELS.items():
        framework = _framework_for_scaling(name)
        framework.run(case.algorithm, case.graph, *args, **kwargs)  # warm
        _, record = framework.run(case.algorithm, case.graph, *args, **kwargs)
        curves[label] = speedup_curve(
            record.per_iteration_work, THREADS, framework.scaling_profile
        )
    return curves


def _render(title, curves):
    rows = []
    for label, curve in curves.items():
        low, high = FIG5_SPEEDUP_AT_24[label]
        rows.append(
            [label]
            + [f"{curve[t]:.1f}x" for t in THREADS]
            + [f"{low:g}-{high:g}x"]
        )
    return format_table(
        ["framework"] + [f"T={t}" for t in THREADS] + ["paper@24"],
        rows,
        title=title,
    )


def test_fig5a_pagerank_scalability(benchmark, pedantic_kwargs):
    curves = _curves("pagerank", "facebook", {"iterations": 3})
    table = _render("Figure 5(a) - PageRank/Facebook simulated scaling", curves)
    print("\n" + table)
    write_result("fig5a_scalability_pagerank", table)
    at24 = {label: curve[24] for label, curve in curves.items()}
    # Paper shape: GraphMat scales best; CombBLAS worst (square grid).
    assert at24["GraphMat"] > at24["GraphLab"]
    assert at24["GraphMat"] > at24["CombBLAS"]
    assert at24["GraphMat"] > at24["Galois"]
    assert at24["GraphMat"] > 8.0
    assert at24["CombBLAS"] <= 16.0
    # Speedup never decreases with cores for the dynamic schedulers.
    for label in ("GraphMat", "Galois"):
        values = [curves[label][t] for t in THREADS]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
    benchmark.pedantic(
        lambda: _curves("pagerank", "facebook", {"iterations": 2}),
        **pedantic_kwargs,
    )


def test_fig5b_sssp_scalability(benchmark, pedantic_kwargs):
    curves = _curves("sssp", "flickr")
    table = _render("Figure 5(b) - SSSP/Flickr simulated scaling", curves)
    print("\n" + table)
    write_result("fig5b_scalability_sssp", table)
    at24 = {label: curve[24] for label, curve in curves.items()}
    assert at24["GraphMat"] > at24["GraphLab"]
    assert at24["GraphMat"] > at24["CombBLAS"]
    benchmark.pedantic(lambda: _curves("sssp", "flickr"), **pedantic_kwargs)


def test_fig5_speedup_model_timing(benchmark, pedantic_kwargs):
    case = prepare_case("facebook", "pagerank", {"iterations": 2})
    framework = _framework_for_scaling("graphmat")
    args, kwargs = run_params(case)
    _, record = framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: speedup_curve(
            record.per_iteration_work, THREADS, framework.scaling_profile
        ),
        **pedantic_kwargs,
    )
