"""CI perf-regression gate: compare a benchmark record against a baseline.

Replaces the upload-only CI step: after the smoke benchmark runs, this
script compares the fresh ``BENCH_*.json`` record against the committed
baseline under ``benchmarks/baselines/`` and exits non-zero when any
timed metric regressed by more than the tolerance (default 30%).

Cross-machine comparability: every record embeds a
``meta.calibration_seconds`` probe (one fixed NumPy workload, see
``repro.bench.calibrate``).  Baseline times are rescaled by the ratio of
the two probes before the tolerance applies, so a slower CI runner does
not read as a regression and a faster one does not hide a real slowdown.

Metric kinds:

- ``time``  — lower is better; fail when
  ``current > baseline * calibration_factor * (1 + tolerance)``.
- ``ratio`` — machine-independent, higher is better (speedups,
  allocation-reduction factors); fail when
  ``current < baseline / (1 + tolerance)``.  A ratio may also carry an
  absolute floor (acceptance criteria like "mmap load >= 5x cold
  parse") that fails regardless of the baseline.
- ``floor`` — higher is better, checked ONLY against its absolute
  floor in ``RATIO_FLOORS``, never against the baseline.  Used for
  ratios derived from very short smoke timings (the batch speedups):
  a baseline-relative bound on a ratio of ~10 ms measurements would
  re-impose the full baseline value as a hard bar with no noise floor.

Usage::

    python benchmarks/check_regression.py \\
        --current BENCH_backends.json \\
        --baseline benchmarks/baselines/BENCH_backends.json \\
        [--tolerance 0.30] [--update]

``--update`` rewrites the baseline from the current record (for
intentional performance-profile changes; commit the result).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: Maximum per-metric slowdown before the gate fails (30%).
DEFAULT_TOLERANCE = 0.30
#: Absolute slack added to every time limit: sub-10ms smoke timings on
#: shared CI runners jitter by more than 30%, and a 5ms grace keeps the
#: gate meaningful for real workloads without tripping on scheduler
#: noise (a true regression at that magnitude is invisible anyway).
NOISE_FLOOR_SECONDS = 0.005
#: Record-configuration keys that must match between current and
#: baseline: comparing different workload shapes is a usage error, not
#: a regression.
CONFIG_KEYS = (
    "benchmark",
    "scale",
    "edge_factor",
    "pr_iterations",
    "n_partitions",
    "n_lanes",
    "strategy",
    "worker_counts",
    "per_kind",
    "n_clients",
    "delta_fraction",
    "serve_iterations",
    "batches",
    "batch_edges",
    "cancel_iterations",
    "good_requests",
    "flood_requests",
)
#: Calibration ratios are clamped here: beyond this the hosts are too
#: different for time scaling to mean anything, and a corrupt probe
#: must not scale a real regression into the tolerance band.
CALIBRATION_CLAMP = (0.25, 4.0)

#: Absolute floors on ratio metrics (acceptance criteria, not baselines).
#: The batch-speedup floors assert "batching never loses" at any scale;
#: the >= 3x acceptance bar applies to the committed full-scale record
#: (scale 16, checked by ``bench_batch``'s own acceptance block), not to
#: CI smoke runs.
RATIO_FLOORS = {
    "speedup.snapshot_vs_cold": 5.0,
    "allocations.reduction_factor": 1.0,
    "speedup.bfs_batch_vs_sequential": 1.5,
    "speedup.ppr_batch_vs_sequential": 1.5,
    # Serving gate: micro-batching must clearly beat the K=1-per-request
    # baseline even on small CI smoke runs (the 3x acceptance bar is
    # asserted by the committed full-scale BENCH_serve.json), the
    # scheduler must actually form multi-lane batches under concurrent
    # load, and the repeat-heavy workload must hit the result cache.
    "speedup.batched_vs_unbatched": 1.5,
    "batched.mean_batch_k": 2.0,
    "cached.hit_rate": 0.25,
    # Dynamic-graph gate: the delta overlay must beat full recompute
    # even at CI smoke scales (the >= 5x BFS acceptance bar applies to
    # the committed full-scale record, asserted by bench_dynamic's own
    # acceptance block at scale >= 16), and — regression-tested hard —
    # overlay responses must stay BITWISE identical to a from-scratch
    # rebuild, with the warm-started PageRank inside its error budget.
    "speedup.bfs_incremental_vs_full": 1.5,
    "speedup.pagerank_incremental_vs_full": 1.15,
    "parity.bfs_bitwise": 1.0,
    "parity.pagerank_bitwise": 1.0,
    "parity.pagerank_warm_error_ok": 1.0,
    # Replication gate: a follower that tails the full mutation history
    # must answer reads bitwise identically to the leader, and the
    # crash-recovered service must match too — any divergence fails
    # regardless of timing.
    "parity.follower_bitwise": 1.0,
    # Compiled-tier gate: the jit backends must stay bitwise identical
    # to the serial NumPy reference (hard floor, with or without numba).
    # The speedup floors only appear when numba is installed (see
    # extract_metrics); 1.5x is the smoke floor — the >= 5x acceptance
    # bar applies to full-scale records and is asserted by
    # repro.bench.jit.acceptance_check, not here.
    "parity.pagerank_bitwise_jit": 1.0,
    "parity.pagerank_bitwise_jit_threaded": 1.0,
    "parity.bfs_bitwise_jit": 1.0,
    "parity.bfs_bitwise_jit_threaded": 1.0,
    "speedup.jit_vs_threaded": 1.0,
    "speedup.jit_threaded_vs_threaded": 1.5,
    # Governance gate: cancellation must be deterministic and contained
    # — a budget-B token run bitwise equals a plain max_iterations=B
    # run, lanes that survive a cancelled co-batched neighbor stay
    # bitwise identical to sequential runs, and every engine-cancelled
    # runaway stops within ~2 of its own superstep durations past the
    # deadline.  The fairness floors assert the flood is actually shed
    # while well-behaved tenants all complete; the overhead floor
    # asserts an un-expiring token is perf-neutral (>= 0.75 tolerates
    # smoke-run timing noise on a ~1.0 ratio).
    "budget.budget_exact": 1.0,
    "parity.survivor_bitwise": 1.0,
    "cancel.within_two_supersteps": 1.0,
    "fairness.good_success_rate": 0.95,
    "fairness.flood_rejected_fraction": 0.05,
    "overhead.plain_vs_token": 0.75,
    # Parallel-ingest gate: every worker count must write the identical
    # snapshot bytes with identical aggregated counters, and the
    # snapshot must compute bitwise-identical PageRank to the in-memory
    # reader — hard floors.  The best-vs-single speedup floor only
    # asserts parallelism is not counterproductive on a small CI runner
    # (the >= 4x acceptance bar applies to full-scale multi-core
    # records, asserted by repro.bench.ingest.acceptance_check).
    "parallel.speedup_best_vs_single": 0.3,
    "parallel.counters_equal": 1.0,
    "parity.parallel_bytes_identical": 1.0,
    # Observability gate: the instrumented serving phase (metrics +
    # traces + profile hook live) must hold most of plain batched
    # throughput even on short CI smoke runs.  The 0.95 acceptance bar
    # applies to the committed full-scale BENCH_serve.json (asserted by
    # bench_serve's own acceptance block); 0.75 here tolerates the
    # timing noise of ~0.1 s smoke phases (observed spread 0.81-1.02
    # across repeated runs) while still catching a hot-path regression
    # such as lock contention, which costs far more than 25%.
    "overhead.instrumented_throughput_ratio": 0.75,
}


def _dig(record: dict, dotted: str):
    node = record
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def extract_metrics(record: dict) -> dict[str, tuple[float, str]]:
    """``{metric_name: (value, kind)}`` for one benchmark record."""
    benchmark = _dig(record, "meta.benchmark")
    metrics: dict[str, tuple[float, str]] = {}
    if benchmark == "bench_backends":
        for workload, field in (
            ("pagerank", "seconds_per_iteration"),
            ("bfs", "seconds"),
        ):
            for config, cell in (record.get(workload) or {}).items():
                metrics[f"{workload}.{config}.{field}"] = (
                    float(cell[field]),
                    "time",
                )
        reduction = _dig(record, "allocations.reduction_factor")
        if reduction is not None:
            metrics["allocations.reduction_factor"] = (float(reduction), "ratio")
    elif benchmark == "bench_ingest":
        for name in (
            "cold.total_seconds",
            "ingest.total_seconds",
            "snapshot_load.seconds",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "time")
        for key, run in (_dig(record, "parallel.runs") or {}).items():
            metrics[f"parallel.runs.{key}.total_seconds"] = (
                float(run["total_seconds"]),
                "time",
            )
        speedup = _dig(record, "speedup.snapshot_vs_cold")
        if speedup is not None:
            metrics["speedup.snapshot_vs_cold"] = (float(speedup), "ratio")
        # Parallel-ingest invariants are floor-only (see RATIO_FLOORS):
        # the identity flags are boolean-like hard floors, and the
        # speedup is a ratio of short smoke timings whose component
        # wall-times are already gated above.
        for name in (
            "parallel.speedup_best_vs_single",
            "parallel.counters_equal",
            "parity.parallel_bytes_identical",
            "parity.pagerank_bitwise",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "floor")
    elif benchmark == "bench_batch":
        for workload in ("bfs", "ppr"):
            for side in ("sequential", "batched"):
                value = _dig(record, f"{workload}.{side}.seconds")
                if value is not None:
                    metrics[f"{workload}.{side}.seconds"] = (
                        float(value),
                        "time",
                    )
            speedup = _dig(record, f"speedup.{workload}_batch_vs_sequential")
            if speedup is not None:
                # Floor-only: a timing-derived ratio of ~10 ms smoke
                # runs is too noisy for baseline-relative bounds (the
                # component times above are themselves gated, with the
                # additive noise floor applied).
                metrics[f"speedup.{workload}_batch_vs_sequential"] = (
                    float(speedup),
                    "floor",
                )
            amortization = _dig(record, f"{workload}.sweep_amortization")
            if amortization is not None:
                metrics[f"{workload}.sweep_amortization"] = (
                    float(amortization),
                    "ratio",
                )
    elif benchmark == "bench_dynamic":
        for name in (
            "bfs.full.seconds",
            "bfs.incremental.seconds",
            "pagerank.full.seconds",
            "pagerank.incremental.seconds",
            "mutation.apply_and_merge_views_seconds",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "time")
        # Short-timing-derived ratios are floor-only (see bench_batch);
        # the parity booleans are hard floors at 1.0 — any drift from
        # bitwise parity or the warm-start error budget fails the gate.
        for name in (
            "speedup.bfs_incremental_vs_full",
            "speedup.pagerank_incremental_vs_full",
            "parity.bfs_bitwise",
            "parity.pagerank_bitwise",
            "parity.pagerank_warm_error_ok",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "floor")
    elif benchmark == "bench_replication":
        for name in (
            "bootstrap.seconds",
            "lag.mean_seconds",
            "catchup.seconds",
            "recovery.seconds",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "time")
        # Bitwise parity of follower + recovered reads is a hard floor.
        value = _dig(record, "parity.follower_bitwise")
        if value is not None:
            metrics["parity.follower_bitwise"] = (float(value), "floor")
    elif benchmark == "bench_serve":
        # The instrumented phase is deliberately absent from the wall-time
        # checks: its regression signal is the throughput ratio against the
        # batched phase (floor below), and a separate time bound would
        # double-count the same noise batched.seconds already gates.
        for phase in (
            "unbatched", "unbatched_service", "batched", "cached",
        ):
            value = _dig(record, f"{phase}.seconds")
            if value is not None:
                metrics[f"{phase}.seconds"] = (float(value), "time")
        # Throughput-derived ratios of short concurrent smoke runs are
        # floor-only, like the batch speedups (see the module docstring);
        # the phase wall-times above get the baseline-relative treatment.
        for name in (
            "speedup.batched_vs_unbatched",
            "batched.mean_batch_k",
            "cached.hit_rate",
            "overhead.instrumented_throughput_ratio",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "floor")
    elif benchmark == "bench_jit":
        for workload, field in (
            ("pagerank", "seconds_per_iteration"),
            ("bfs", "seconds"),
        ):
            for config, cell in (record.get(workload) or {}).items():
                metrics[f"{workload}.{config}.{field}"] = (
                    float(cell[field]),
                    "time",
                )
        # Bitwise parity with the serial NumPy reference is the tier's
        # defining contract — hard floors, numba or not.
        for name, value in (record.get("parity") or {}).items():
            metrics[f"parity.{name}"] = (float(value), "floor")
        # Speedup floors only make sense with the compiled tier actually
        # present; without numba the jit backends run the same NumPy
        # kernels and the ratio is ~1x by construction.
        if _dig(record, "meta.numba_available"):
            for name, value in (record.get("speedup") or {}).items():
                metrics[f"speedup.{name}"] = (float(value), "floor")
    elif benchmark == "bench_governance":
        for name in (
            "cancel.seconds",
            "budget.seconds",
            "overhead.plain_seconds",
            "overhead.token_seconds",
            "fairness.seconds",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "time")
        # The governance invariants are machine-independent hard floors
        # (see RATIO_FLOORS): cancellation exactness and survivor parity
        # at 1.0, flood shedding and well-behaved success rates, and the
        # token perf-neutrality ratio — all floor-only because every one
        # is either a boolean-like parity or a ratio of short smoke
        # timings.
        for name in (
            "budget.budget_exact",
            "parity.survivor_bitwise",
            "cancel.within_two_supersteps",
            "fairness.good_success_rate",
            "fairness.flood_rejected_fraction",
            "overhead.plain_vs_token",
        ):
            value = _dig(record, name)
            if value is not None:
                metrics[name] = (float(value), "floor")
    else:
        raise ValueError(f"unknown benchmark kind {benchmark!r}")
    return metrics


def calibration_factor(current: dict, baseline: dict) -> float:
    """How much slower the current host is than the baseline host."""
    cur = _dig(current, "meta.calibration_seconds")
    base = _dig(baseline, "meta.calibration_seconds")
    if not cur or not base:
        return 1.0
    low, high = CALIBRATION_CLAMP
    return min(high, max(low, float(cur) / float(base)))


def config_mismatch(current: dict, baseline: dict) -> list[str]:
    """Configuration keys whose values differ between the two records."""
    return [
        key
        for key in CONFIG_KEYS
        if _dig(current, f"meta.{key}") != _dig(baseline, f"meta.{key}")
    ]


def compare(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[dict]:
    """Evaluate every shared metric; returns one finding per metric."""
    factor = calibration_factor(current, baseline)
    current_metrics = extract_metrics(current)
    baseline_metrics = extract_metrics(baseline)
    findings = []
    for name, (value, kind) in sorted(current_metrics.items()):
        base_entry = baseline_metrics.get(name)
        if base_entry is None:
            findings.append(
                {"metric": name, "status": "new", "current": value}
            )
            continue
        base_value, _ = base_entry
        if kind == "time":
            limit = base_value * factor * (1.0 + tolerance) + NOISE_FLOOR_SECONDS
            status = "fail" if value > limit else "ok"
            findings.append(
                {
                    "metric": name,
                    "status": status,
                    "current": value,
                    "baseline": base_value,
                    "limit": limit,
                    "kind": kind,
                }
            )
        else:
            floor = RATIO_FLOORS.get(name)
            if kind == "floor":
                limit = floor if floor is not None else 0.0
                status = "fail" if floor is not None and value < floor else "ok"
                findings.append(
                    {
                        "metric": name,
                        "status": status,
                        "current": value,
                        "baseline": base_value,
                        "limit": limit,
                        "kind": kind,
                    }
                )
                continue
            limit = base_value / (1.0 + tolerance)
            status = "ok"
            if value < limit:
                status = "fail"
            if floor is not None and value < floor:
                status = "fail"
                limit = max(limit, floor)
            findings.append(
                {
                    "metric": name,
                    "status": status,
                    "current": value,
                    "baseline": base_value,
                    "limit": limit,
                    "kind": kind,
                }
            )
    for name in sorted(set(baseline_metrics) - set(current_metrics)):
        findings.append({"metric": name, "status": "missing"})
    return findings


def _format_finding(finding: dict, factor: float) -> str:
    status = finding["status"].upper()
    if finding["status"] in ("new", "missing"):
        return f"  [{status:<4}] {finding['metric']}"
    direction = "<=" if finding["kind"] == "time" else ">="
    return (
        f"  [{status:<4}] {finding['metric']}: {finding['current']:.6g} "
        f"(baseline {finding['baseline']:.6g}, must be {direction} "
        f"{finding['limit']:.6g}, calibration x{factor:.2f})"
    )


def check_pair(
    current_path: Path,
    baseline_path: Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[bool, str]:
    """Compare one record pair; returns (passed, report_text)."""
    current = json.loads(Path(current_path).read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    mismatched = config_mismatch(current, baseline)
    if mismatched:
        raise ValueError(
            f"record configurations differ on {mismatched}; regenerate the "
            f"baseline with the same benchmark parameters (--update)"
        )
    factor = calibration_factor(current, baseline)
    findings = compare(current, baseline, tolerance)
    failed = [f for f in findings if f["status"] in ("fail", "missing")]
    lines = [
        f"{current_path} vs {baseline_path} "
        f"(tolerance {tolerance:.0%}, calibration x{factor:.2f}):"
    ]
    lines += [_format_finding(f, factor) for f in findings]
    lines.append(
        f"  => {'REGRESSION' if failed else 'PASS'} "
        f"({len(findings) - len(failed)}/{len(findings)} metrics within bounds)"
    )
    return not failed, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced BENCH_*.json record")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline record to compare against")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional slowdown (default 0.30)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the current record")
    args = parser.parse_args(argv)

    if not args.current.exists():
        print(f"error: current record {args.current} not found", file=sys.stderr)
        return 2
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0
    if not args.baseline.exists():
        print(f"error: baseline {args.baseline} not found "
              f"(run with --update to create it)", file=sys.stderr)
        return 2
    try:
        passed, report = check_pair(args.current, args.baseline, args.tolerance)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report)
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
