"""Table 1: dataset inventory — paper statistics vs proxy statistics."""

from repro.bench import format_table, write_result
from repro.graph.datasets import dataset_info, dataset_names
from repro.frameworks.registry import make_framework
from repro.bench import prepare_case, run_params


def test_table1_dataset_inventory(benchmark, pedantic_kwargs):
    rows = []
    for name in dataset_names():
        info = dataset_info(name)
        graph = info.load()
        rows.append(
            [
                name,
                f"{info.paper_vertices:,}",
                f"{info.paper_edges:,}",
                f"{graph.n_vertices:,}",
                f"{graph.n_edges:,}",
                ",".join(info.algorithms),
            ]
        )
        assert graph.n_vertices > 0 and graph.n_edges > 0
    table = format_table(
        ["dataset", "paper |V|", "paper |E|", "proxy |V|", "proxy |E|", "algorithms"],
        rows,
        title="Table 1 - datasets (paper vs generator-backed proxy)",
    )
    print("\n" + table)
    write_result("table1_datasets", table)
    assert len(rows) == 10  # every Table 1 row is represented
    benchmark.pedantic(
        lambda: dataset_info("facebook").load(), **pedantic_kwargs
    )


def test_table1_dataset_load_timing(benchmark, pedantic_kwargs):
    benchmark.pedantic(
        lambda: dataset_info("facebook").load(), **pedantic_kwargs
    )
