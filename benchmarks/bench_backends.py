"""Backend comparison: serial vs threaded vs process SpMV execution.

Emits ``BENCH_backends.json`` (repo root by default) recording PageRank
time-per-iteration and BFS wall-clock for every execution backend on a
Graph500 R-MAT graph, plus the counter-verified per-superstep allocation
reduction of the persistent superstep workspace.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backends.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_backends.py --benchmark-only
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.backends import bench_backends, summarize, write_backend_record

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_backends.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--iterations", type=int, default=5,
                        help="PageRank supersteps per run")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for threaded/process backends")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_backends(
        scale=args.scale,
        edge_factor=args.edge_factor,
        pr_iterations=args.iterations,
        repeats=args.repeats,
        n_workers=args.workers,
    )
    path = write_backend_record(record, args.out)
    print(summarize(record))
    print(f"\nwrote {path}")
    return 0


def test_backend_bench_smoke(tmp_path):
    """Smoke run at a small scale: the record must be complete and the
    workspace must show fewer allocations (the acceptance invariant that
    is machine-independent)."""
    record = bench_backends(scale=10, edge_factor=8, pr_iterations=3, repeats=1)
    out = write_backend_record(record, tmp_path / "BENCH_backends.json")
    assert out.exists()
    for workload in ("pagerank", "bfs"):
        for config in ("serial", "serial+workspace", "threaded", "process"):
            assert record[workload][config]["edges_processed"] > 0
    alloc = record["allocations"]
    assert (
        alloc["with_workspace"]["allocations"]
        < alloc["without_workspace"]["allocations"]
    )
    assert record["winner"]["pagerank_parallel_backend"] in ("threaded", "process")


if __name__ == "__main__":
    sys.exit(main())
