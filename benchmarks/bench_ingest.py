"""Loading-path benchmark: cold text parse vs snapshot mmap load.

Emits ``BENCH_ingest.json`` (repo root by default) recording cold
parse+build, streaming-ingest (single-process and at each worker count,
with a byte-identity parity flag), and snapshot-mmap-load times plus the
process-backend startup hand-off sizes on a Graph500 R-MAT graph.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_ingest.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_ingest.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.ingest import (
    acceptance_check,
    bench_ingest,
    summarize_ingest,
    write_ingest_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_ingest.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--strategy", choices=("rows", "nnz"), default="rows")
    parser.add_argument("--chunk-edges", type=int, default=1 << 18)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2,
                        help="process-backend workers for the startup probe")
    parser.add_argument("--worker-counts", type=int, nargs="+",
                        default=(1, 2, 4),
                        help="ingest worker counts for the parallel section")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_ingest(
        scale=args.scale,
        edge_factor=args.edge_factor,
        n_partitions=args.partitions,
        strategy=args.strategy,
        chunk_edges=args.chunk_edges,
        repeats=args.repeats,
        n_workers=args.workers,
        worker_counts=tuple(args.worker_counts),
    )
    path = write_ingest_record(record, args.out)
    print(summarize_ingest(record))
    failures = acceptance_check(record)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}")
    print(f"\nwrote {path}")
    return 1 if failures else 0


def test_ingest_bench_smoke(tmp_path):
    """Small-scale smoke run asserting the machine-independent invariants:
    mmap load beats cold parse by >= 5x, snapshot-backed process hand-offs
    ship references instead of arrays, both paths compute identical
    PageRank vectors, and every worker count produces the same snapshot
    bytes and counters."""
    record = bench_ingest(
        scale=10, edge_factor=8, repeats=2, pr_iterations=2,
        work_dir=tmp_path, worker_counts=(1, 2),
    )
    out = write_ingest_record(record, tmp_path / "BENCH_ingest.json")
    assert out.exists()
    assert record["speedup"]["snapshot_vs_cold"] >= 5.0
    startup = record["process_startup"]
    assert startup["snapshot"]["ship_bytes"] < startup["in_memory"]["ship_bytes"]
    assert record["parity"]["max_abs_diff"] == 0.0
    assert record["parity"]["pagerank_bitwise"] == 1.0
    assert record["parity"]["parallel_bytes_identical"] == 1.0
    assert record["parallel"]["counters_equal"] == 1.0
    assert set(record["parallel"]["runs"]) == {"w1", "w2"}
    assert record["ingest"]["peak_partition_edges"] <= record["meta"]["n_edges"]
    assert record["meta"]["calibration_seconds"] > 0.0
    # The multi-core speedup bar must not fire at smoke scale.
    assert acceptance_check(record) == []


if __name__ == "__main__":
    sys.exit(main())
