"""Figure 7: effect of the backend optimizations (cumulative speedup).

Paper setup: PageRank/Facebook and SSSP/Flickr; bars = naive, +bitvector,
+ipo, +parallel, +load balance.  Paper result: overall 27.3x (PR) and
19.9x (SSSP) over naive scalar code, with load balancing mattering far
more for SSSP/Flickr (2.8x) than PR/Facebook (1.2x).

The first three bars are measured wall time of the serial engine under
the corresponding EngineOptions; the two parallel bars multiply the +ipo
time by the simulated 24-core speedup computed from measured partition
work (static 24 partitions vs dynamic 8x24 — see DESIGN.md).
"""

import time

import numpy as np

from repro.bench import format_table, prepare_case, run_params, write_result
from repro.bench.paper import FIG7_CUMULATIVE
from repro.core.options import EngineOptions
from repro.frameworks.graphmat import GraphMatFramework
from repro.perf.parallel_model import ScalingProfile, speedup_curve

SERIAL_RUNGS = (
    ("naive", EngineOptions(use_bitvector=False, fused=False)),
    ("+bitvector", EngineOptions(use_bitvector=True, fused=False)),
    ("+ipo", EngineOptions(use_bitvector=True, fused=True)),
)

#: The parallel bars share GraphMat's bandwidth model but differ in
#: scheduling: static with partitions == threads, vs dynamic with 8x
#: over-partitioning (section 4.5 item 4).
_STATIC = ScalingProfile(
    name="static", schedule="static", sync_units=24.0, bandwidth_beta=0.05,
    streaming_fraction=0.75,
)
_DYNAMIC = ScalingProfile(
    name="dynamic", schedule="dynamic", sync_units=24.0, bandwidth_beta=0.05,
    streaming_fraction=0.75, per_unit_overhead=2.0,
)


def _measure(case, options):
    framework = GraphMatFramework(options)
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)  # warm
    start = time.perf_counter()
    _, record = framework.run(case.algorithm, case.graph, *args, **kwargs)
    return time.perf_counter() - start, record


def _ablation(algorithm, dataset, params=None):
    case = prepare_case(dataset, algorithm, params)
    times = {}
    for name, options in SERIAL_RUNGS:
        times[name], _ = _measure(case, options)
    # Parallel bars: measured partition work + simulated 24-core schedule.
    _, static_record = _measure(
        case,
        EngineOptions(
            n_threads=24, dynamic_schedule=False, record_partition_stats=True
        ),
    )
    static_speedup = speedup_curve(
        static_record.per_iteration_work, [24], _STATIC
    )[24]
    _, dynamic_record = _measure(
        case,
        EngineOptions(
            n_threads=24,
            partitions_per_thread=8,
            dynamic_schedule=True,
            record_partition_stats=True,
        ),
    )
    dynamic_speedup = speedup_curve(
        dynamic_record.per_iteration_work, [24], _DYNAMIC
    )[24]
    times["+parallel"] = times["+ipo"] / static_speedup
    times["+load balance"] = times["+ipo"] / dynamic_speedup
    cumulative = {name: times["naive"] / t for name, t in times.items()}
    return times, cumulative


def _render(tag, cumulative):
    paper = FIG7_CUMULATIVE[tag]
    rows = [
        [name, f"{cumulative[name]:.1f}x"]
        for name in ("naive", "+bitvector", "+ipo", "+parallel", "+load balance")
    ]
    rows.append(["paper overall", f"{paper['overall']}x"])
    return format_table(
        ["configuration", "cumulative speedup over naive"],
        rows,
        title=f"Figure 7 - {tag}",
    )


def test_fig7_pagerank_ablation(benchmark, pedantic_kwargs):
    times, cumulative = _ablation("pagerank", "facebook", {"iterations": 2})
    table = _render("pagerank/facebook", cumulative)
    print("\n" + table)
    write_result("fig7_pagerank", table)
    # Monotone ladder: each optimization helps (or at worst is neutral).
    assert cumulative["+bitvector"] >= 0.9  # bitvector: small serial gain
    assert cumulative["+ipo"] > cumulative["+bitvector"]
    assert cumulative["+parallel"] > cumulative["+ipo"]
    assert cumulative["+load balance"] >= cumulative["+parallel"] * 0.95
    assert cumulative["+load balance"] > 5.0
    benchmark.pedantic(
        lambda: _measure(
            prepare_case("facebook", "pagerank", {"iterations": 2}),
            EngineOptions(),
        ),
        **pedantic_kwargs,
    )


def test_fig7_sssp_ablation(benchmark, pedantic_kwargs):
    times, cumulative = _ablation("sssp", "flickr")
    table = _render("sssp/flickr", cumulative)
    print("\n" + table)
    write_result("fig7_sssp", table)
    assert cumulative["+ipo"] > cumulative["naive"]
    assert cumulative["+load balance"] > cumulative["+ipo"]
    benchmark.pedantic(
        lambda: _measure(prepare_case("flickr", "sssp"), EngineOptions()),
        **pedantic_kwargs,
    )


def test_fig7_load_balance_helps_skew_more(benchmark, pedantic_kwargs):
    """Paper: load balancing buys 2.8x on SSSP/Flickr vs 1.2x on
    PR/Facebook.  Check the direction: the skewed-frontier workload gains
    at least as much from dynamic over-partitioning as the dense one."""
    _, pr = _ablation("pagerank", "facebook", {"iterations": 2})
    _, sssp = _ablation("sssp", "flickr")
    pr_gain = pr["+load balance"] / pr["+parallel"]
    sssp_gain = sssp["+load balance"] / sssp["+parallel"]
    print(f"\nload-balance gain: PR {pr_gain:.2f}x, SSSP {sssp_gain:.2f}x")
    assert sssp_gain >= pr_gain * 0.8
    benchmark.pedantic(lambda: (pr_gain, sssp_gain), **pedantic_kwargs)


def test_fig7_fused_engine_timing(benchmark, pedantic_kwargs):
    case = prepare_case("facebook", "pagerank", {"iterations": 2})
    framework = GraphMatFramework(EngineOptions())
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
