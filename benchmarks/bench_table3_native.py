"""Table 3: GraphMat slowdown relative to native hand-optimized code.

Paper values: PR 1.15x, BFS 1.18x, TC 2.10x, CF 0.73x (GraphMat *faster*,
because GraphMat runs GD while native runs SGD), overall geomean 1.20x.
The Python substrate widens the gap (scipy kernels are compiled; the
GraphMat engine is interpreted glue around numpy), so the assertion is on
ordering and on CF's inversion, not on the 1.2x magnitude.
"""

from repro.bench import format_table, run_grid, write_result
from repro.bench.paper import TABLE3_NATIVE_SLOWDOWN

CASES = {
    "pagerank": (["facebook"], {"iterations": 3}),
    "bfs": (["facebook"], None),
    "tc": (["rmat_20"], None),
    "cf": (["netflix"], {"iterations": 2}),
    "sssp": (["flickr"], None),
}


def test_table3_native_comparison(benchmark, pedantic_kwargs):
    rows = []
    slowdowns = {}
    for algo, (datasets, params) in CASES.items():
        grid = run_grid(algo, datasets, ["native", "graphmat"], params)
        native = grid.cell("native", datasets[0]).metric_seconds()
        graphmat = grid.cell("graphmat", datasets[0]).metric_seconds()
        slowdowns[algo] = graphmat / native
        paper = TABLE3_NATIVE_SLOWDOWN.get(algo)
        rows.append(
            [
                algo,
                f"{slowdowns[algo]:.2f}x",
                f"{paper}x" if paper else "n/a (SSSP not in Table 3)",
            ]
        )
    product = 1.0
    for s in slowdowns.values():
        product *= s
    overall = product ** (1.0 / len(slowdowns))
    rows.append(
        ["overall (geomean)", f"{overall:.2f}x", f"{TABLE3_NATIVE_SLOWDOWN['overall']}x"]
    )
    table = format_table(
        ["algorithm", "measured slowdown", "paper slowdown"],
        rows,
        title="Table 3 - GraphMat vs native hand-optimized code",
    )
    print("\n" + table)
    write_result("table3_native", table)
    # Native is the ceiling for the core traversal/statistics algorithms.
    # (SSSP is excluded: scipy's heap-based Dijkstra can lose to the
    # vectorized frontier engine on small, shallow graphs — and the paper's
    # Table 3 does not include SSSP either.)
    for algo in ("pagerank", "bfs", "tc"):
        assert slowdowns[algo] > 1.0, f"GraphMat beat native on {algo}?"
    # ...and the framework stays within interpreted-glue distance of it.
    assert overall < 50.0
    benchmark.pedantic(lambda: dict(slowdowns), **pedantic_kwargs)
