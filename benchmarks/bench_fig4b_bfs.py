"""Figure 4(b): BFS total runtime across frameworks.

Paper datasets: LiveJournal, Facebook, Wikipedia, RMAT scale 23
(symmetrized).  Paper result: GraphMat ~7.9x faster than GraphLab, 2.2x
faster than CombBLAS, ties Galois.
"""

from repro.bench import grid_table, prepare_case, run_grid, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework

DATASETS = ["livejournal", "facebook", "wikipedia", "rmat_23"]


def test_fig4b_grid_shape(benchmark, pedantic_kwargs):
    grid = run_grid("bfs", DATASETS, list(COMPARED_FRAMEWORKS))
    table = grid_table(grid, "Figure 4(b) - BFS total time")
    print("\n" + table)
    write_result("fig4b_bfs", table)
    assert grid.geomean_speedup("graphlab") > 1.0
    # BFS answers must agree across frameworks (reachable vertex counts).
    import numpy as np

    for dataset in DATASETS:
        counts = {
            fw: int(np.isfinite(grid.cell(fw, dataset).value).sum())
            for fw in COMPARED_FRAMEWORKS
            if grid.cell(fw, dataset).completed
        }
        assert len(set(counts.values())) == 1, counts
    _bench_graphmat(benchmark, pedantic_kwargs, "facebook", "bfs", None)


def _bench_graphmat(benchmark, pedantic_kwargs, dataset, algorithm, params):
    """Attach a GraphMat timing to the grid test so the comparison tables
    regenerate under ``pytest --benchmark-only`` as well."""
    case = prepare_case(dataset, algorithm, params)
    framework = make_framework("graphmat")
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
