"""Governance benchmark: runaway containment, cancellation cost, fairness.

Emits ``BENCH_governance.json`` (repo root by default) recording, for
one R-MAT graph pair: how far past its deadline a co-batched runaway
personalized-PageRank lane runs (in units of its own superstep
durations — cooperative cancellation must be superstep-granular),
bitwise parity of the surviving lanes against sequential runs, exactness
of token ``superstep_budget`` cancellation, the overhead of an
un-expiring governance token on uncancelled runs (must be
perf-neutral), and closed-loop fairness when a flooding tenant hammers
a quota'd service alongside well-behaved tenants.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_governance.py [--scale 14] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_governance.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.governance import (
    bench_governance,
    summarize,
    write_governance_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_governance.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=14,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--lanes", type=int, default=8,
                        help="lanes in the cancellation batch (K)")
    parser.add_argument("--cancel-iterations", type=int, default=1000,
                        help="supersteps a runaway lane asks for")
    parser.add_argument("--runaway-deadline-ms", type=float, default=50.0,
                        help="deadline the runaway lanes cannot meet")
    parser.add_argument("--iterations", type=int, default=30,
                        help="supersteps per overhead-phase run")
    parser.add_argument("--overhead-runs", type=int, default=6)
    parser.add_argument("--good-requests", type=int, default=40,
                        help="well-behaved requests in the fairness phase")
    parser.add_argument("--flood-requests", type=int, default=200,
                        help="flooding-tenant requests in the fairness phase")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_governance(
        scale=args.scale,
        edge_factor=args.edge_factor,
        n_lanes=args.lanes,
        cancel_iterations=args.cancel_iterations,
        runaway_deadline=args.runaway_deadline_ms / 1e3,
        pr_iterations=args.iterations,
        overhead_runs=args.overhead_runs,
        good_requests=args.good_requests,
        flood_requests=args.flood_requests,
    )
    path = write_governance_record(record, args.out)
    print(summarize(record))
    print(f"\nwrote {path}")
    return 0


def test_governance_bench_smoke(tmp_path):
    """Small-scale smoke run: the governance invariants are
    machine-independent, so they must hold even at toy sizes — budget
    cancellation bitwise-exact, survivors of a cancelled batch bitwise
    identical to sequential runs, overruns superstep-granular, the flood
    actually shed, and every well-behaved request served correctly."""
    record = bench_governance(
        scale=10, edge_factor=8, n_lanes=4,
        cancel_iterations=1000, runaway_deadline=0.05,
        budget_runs=2, overhead_runs=3, pr_iterations=10,
        good_requests=16, flood_requests=60,
    )
    out = write_governance_record(record, tmp_path / "BENCH_governance.json")
    assert out.exists()
    assert record["budget"]["budget_exact"] == 1.0
    assert record["cancel"]["survivor_bitwise"] == 1.0
    assert record["parity"]["survivor_bitwise"] == 1.0
    assert record["cancel"]["within_two_supersteps"] == 1.0
    assert record["cancel"]["engine_cancelled"] >= 1
    assert record["fairness"]["good_success_rate"] == 1.0
    assert record["fairness"]["flood_rejected_fraction"] >= 0.05
    assert record["overhead"]["plain_vs_token"] > 0.0


if __name__ == "__main__":
    sys.exit(main())
