"""Replication benchmark: lag, catch-up, and crash-recovery times.

Emits ``BENCH_replication.json`` (repo root by default) recording, for
a snapshot-backed R-MAT graph behind a live leader/follower pair on
loopback: per-batch replication lag (mutation commit -> follower
serves the same epoch), cold-follower catch-up time over the full
mutation history, single-node crash-recovery time from the surviving
snapshot + delta log, and the bitwise-parity check of follower reads
against the leader.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_replication.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_replication.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.replication import (
    bench_replication,
    summarize_replication,
    write_replication_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_replication.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--batches", type=int, default=50,
                        help="mutation batches shipped through replication")
    parser.add_argument("--batch-edges", type=int, default=256,
                        help="inserted edges per mutation batch")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of repeats for catch-up and recovery")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_replication(
        scale=args.scale,
        edge_factor=args.edge_factor,
        batches=args.batches,
        batch_edges=args.batch_edges,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = write_replication_record(record, args.out)
    print(summarize_replication(record))
    print(f"\nwrote {path}")
    return 0


def test_replication_bench_smoke(tmp_path):
    """Small-scale smoke run asserting the machine-independent
    invariants: every shipped batch lands (zero residual lag), the
    recovered service resumes at the leader's epoch with every batch
    replayed, and follower/recovery reads stay bitwise identical."""
    record = bench_replication(
        scale=9, edge_factor=8, batches=5, batch_edges=32, repeats=1,
        work_dir=tmp_path,
    )
    out = write_replication_record(
        record, tmp_path / "BENCH_replication.json"
    )
    assert out.exists()
    assert record["parity"]["follower_bitwise"] == 1.0
    assert record["lag"]["batches"] == 5
    assert record["recovery"]["epoch"] == 5
    assert record["recovery"]["recovered_batches"] == 5
    assert record["meta"]["calibration_seconds"] > 0.0


if __name__ == "__main__":
    sys.exit(main())
