"""Shared benchmark configuration.

Each bench module regenerates one paper artifact (a Figure 4 panel, a
table, a simulation figure), writes the rendered comparison to
``benchmarks/results/<artifact>.txt`` and asserts only the paper's robust
*shape* claims (who wins), never absolute numbers.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest

from repro.bench.cases import clear_cache


def pytest_sessionstart(session):
    clear_cache()


@pytest.fixture(scope="session")
def pedantic_kwargs():
    """Low-round pedantic settings: graphs are deterministic, timings are
    dominated by graph size rather than noise."""
    return {"rounds": 3, "warmup_rounds": 1, "iterations": 1}
