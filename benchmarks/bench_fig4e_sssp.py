"""Figure 4(e): single-source shortest path total runtime.

Paper datasets: Flickr, USA-road (CAL), RMAT scale 24, RMAT scale 23.
Paper result: GraphMat ~10x faster than GraphLab and CombBLAS — the gap
is largest on the many-iteration/low-work graphs (Flickr, USA-road) where
per-iteration overhead dominates; Galois is ~30% *faster* than GraphMat
thanks to asynchronous execution.
"""

from repro.bench import grid_table, prepare_case, run_grid, run_params, write_result
from repro.frameworks.registry import COMPARED_FRAMEWORKS, make_framework

DATASETS = ["flickr", "usa_road", "rmat_24", "rmat_23"]


def test_fig4e_grid_shape(benchmark, pedantic_kwargs):
    grid = run_grid("sssp", DATASETS, list(COMPARED_FRAMEWORKS))
    table = grid_table(grid, "Figure 4(e) - SSSP total time")
    print("\n" + table)
    write_result("fig4e_sssp", table)
    assert grid.geomean_speedup("graphlab") > 1.0
    # Distances agree everywhere.
    import numpy as np

    for dataset in DATASETS:
        base = grid.cell("graphmat", dataset).value
        for fw in COMPARED_FRAMEWORKS:
            if grid.cell(fw, dataset).completed:
                assert np.allclose(
                    grid.cell(fw, dataset).value, base, equal_nan=True
                )
    _bench_graphmat(benchmark, pedantic_kwargs, "flickr", "sssp", None)


def _bench_graphmat(benchmark, pedantic_kwargs, dataset, algorithm, params):
    """Attach a GraphMat timing to the grid test so the comparison tables
    regenerate under ``pytest --benchmark-only`` as well."""
    case = prepare_case(dataset, algorithm, params)
    framework = make_framework("graphmat")
    args, kwargs = run_params(case)
    framework.run(case.algorithm, case.graph, *args, **kwargs)
    benchmark.pedantic(
        lambda: framework.run(case.algorithm, case.graph, *args, **kwargs),
        **pedantic_kwargs,
    )
