"""Dynamic-graph benchmark: 1% edge delta, incremental vs full recompute.

Emits ``BENCH_dynamic.json`` (repo root by default) recording, for a
snapshot-backed R-MAT graph: mutation micro-costs (apply / view merge /
log append), full-recompute vs incremental BFS and PageRank times (with
and without snapshot regeneration on the full side), residual
warm-start PageRank quality, and the bitwise-parity checks against a
from-scratch rebuild.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_dynamic.py [--scale 16] [--out PATH]

or as a pytest smoke test (small scale)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dynamic.py
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.dynamic import (
    bench_dynamic,
    summarize_dynamic,
    write_dynamic_record,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_dynamic.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=16,
                        help="R-MAT scale (2**scale vertices)")
    parser.add_argument("--edge-factor", type=int, default=16)
    parser.add_argument("--delta-fraction", type=float, default=0.01,
                        help="mutation size as a fraction of the edge count")
    parser.add_argument("--partitions", type=int, default=8)
    parser.add_argument("--strategy", choices=("rows", "nnz"), default="rows")
    parser.add_argument("--serve-iterations", type=int, default=30,
                        help="fixed PageRank iteration budget (serving mode)")
    parser.add_argument("--warm-tolerance", type=float, default=1e-9)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    record = bench_dynamic(
        scale=args.scale,
        edge_factor=args.edge_factor,
        delta_fraction=args.delta_fraction,
        n_partitions=args.partitions,
        strategy=args.strategy,
        serve_iterations=args.serve_iterations,
        warm_tolerance=args.warm_tolerance,
        repeats=args.repeats,
        seed=args.seed,
    )
    path = write_dynamic_record(record, args.out)
    print(summarize_dynamic(record))
    print(f"\nwrote {path}")
    return 0


def test_dynamic_bench_smoke(tmp_path):
    """Small-scale smoke run asserting the machine-independent invariants:
    overlay responses bitwise identical to a from-scratch rebuild, the
    incremental paths never lose to full recompute, and the warm-started
    PageRank lands within its error budget."""
    record = bench_dynamic(
        scale=10, edge_factor=8, repeats=2, serve_iterations=5,
        warm_tolerance=1e-8, work_dir=tmp_path,
    )
    out = write_dynamic_record(record, tmp_path / "BENCH_dynamic.json")
    assert out.exists()
    assert record["parity"]["bfs_bitwise"] == 1.0
    assert record["parity"]["pagerank_bitwise"] == 1.0
    assert record["parity"]["pagerank_warm_error_ok"] == 1.0
    assert record["speedup"]["bfs_incremental_vs_full"] > 1.0
    assert record["speedup"]["pagerank_incremental_vs_full"] > 1.0
    assert record["bfs"]["incremental"]["strategy"] == "incremental"
    assert record["meta"]["calibration_seconds"] > 0.0


if __name__ == "__main__":
    sys.exit(main())
