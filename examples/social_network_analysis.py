"""Social network analysis: the paper's motivating workload class.

Generates an RMAT graph shaped like a social network (power-law degrees),
then runs the classic analysis stack: influencer ranking (PageRank),
community structure proxy (triangle counting → clustering coefficient),
and reachability (connected components).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import (
    rmat_graph,
    run_connected_components,
    run_pagerank,
    run_triangle_count,
    to_dag,
)


def main() -> None:
    # Scale 12 = 4096 users; edge_factor 16 ≈ 64k follow relationships.
    graph = rmat_graph(scale=12, edge_factor=16, seed=7)
    print(
        f"social graph: {graph.n_vertices:,} users, "
        f"{graph.n_edges:,} follow edges"
    )

    # Who are the influencers?
    ranks = run_pagerank(graph, max_iterations=30, tolerance=1e-9).ranks
    top = np.argsort(ranks)[::-1][:5]
    print("\ntop-5 users by PageRank:")
    in_deg = graph.in_degrees()
    for v in top:
        print(
            f"  user {v}: rank {ranks[v]:.2f} "
            f"({in_deg[v]} followers)"
        )

    # How clustered is the network?
    tc = run_triangle_count(to_dag(graph))
    wedges = int((in_deg * (in_deg - 1) // 2).sum())
    clustering = 3 * tc.total / wedges if wedges else 0.0
    print(f"\ntriangles: {tc.total:,}")
    print(f"global clustering coefficient ~ {clustering:.4f}")

    # Is everyone reachable from everyone (weakly)?
    cc = run_connected_components(graph)
    sizes = np.bincount(cc.labels)
    sizes = sizes[sizes > 0]
    print(
        f"\ncomponents: {cc.n_components} "
        f"(largest covers {sizes.max() / graph.n_vertices:.1%} of users)"
    )


if __name__ == "__main__":
    main()
