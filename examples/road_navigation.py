"""Driving directions on a road network (paper section 3-V's use case).

Generates a grid road network (the USA-road proxy), runs SSSP from a
depot, and reconstructs an actual shortest route by walking the distance
labels backwards.

Run:  python examples/road_navigation.py
"""

import numpy as np

from repro import road_graph, run_sssp
from repro.graph.preprocess import largest_connected_component


def reconstruct_route(graph, distances, target):
    """Walk backwards along tight edges: dist[u] + w(u,v) == dist[v]."""
    in_csr = graph.in_csr()
    route = [target]
    current = target
    while distances[current] > 0:
        nbrs, weights = in_csr.row(current)
        tight = np.flatnonzero(
            np.isclose(distances[nbrs] + weights, distances[current])
        )
        current = int(nbrs[tight[0]])
        route.append(current)
    route.reverse()
    return route


def main() -> None:
    graph = largest_connected_component(road_graph(40, 40, seed=3))
    print(
        f"road network: {graph.n_vertices:,} intersections, "
        f"{graph.n_edges:,} road segments"
    )

    depot = 0
    result = run_sssp(graph, depot)
    reachable = np.isfinite(result.distances)
    print(
        f"SSSP from depot {depot}: {result.stats.n_supersteps} supersteps, "
        f"{reachable.sum():,} intersections reachable"
    )

    # Route to the farthest reachable intersection.
    far = int(np.nanargmax(np.where(reachable, result.distances, -1)))
    route = reconstruct_route(graph, result.distances, far)
    print(
        f"\nfarthest destination: {far} "
        f"(travel cost {result.distances[far]:.0f})"
    )
    print(f"route has {len(route)} intersections:")
    head = " -> ".join(str(v) for v in route[:8])
    print(f"  {head}{' -> ...' if len(route) > 8 else ''}")

    # The paper's point about road graphs: many iterations, little work per
    # iteration — exactly where per-superstep overhead matters.
    edges_per_step = result.stats.total_edges_processed / max(
        1, result.stats.n_supersteps
    )
    print(
        f"\nwork profile: {edges_per_step:.0f} edges/superstep over "
        f"{result.stats.n_supersteps} supersteps (high-diameter shape)"
    )


if __name__ == "__main__":
    main()
