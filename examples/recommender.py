"""Movie recommendations via collaborative filtering (paper section 3-III).

Builds a Netflix-like bipartite rating graph, factorizes it with the
GraphMat gradient-descent program, and recommends unseen items for a user.

Run:  python examples/recommender.py
"""

import numpy as np

from repro import bipartite_rating_graph, run_collaborative_filtering
from repro.graph.generators import BipartiteSpec


def main() -> None:
    spec = BipartiteSpec(n_users=2_000, n_items=150, ratings_per_user=25)
    graph = bipartite_rating_graph(spec, seed=42)
    print(
        f"rating graph: {spec.n_users:,} users x {spec.n_items} items, "
        f"{graph.n_edges:,} ratings"
    )

    result = run_collaborative_filtering(
        graph,
        spec.n_users,
        k=16,
        gamma=0.001,
        lam=0.05,
        iterations=25,
        seed=1,
    )
    print("\ntraining RMSE per GD iteration:")
    for i, rmse in enumerate(result.rmse_history):
        if i % 5 == 0 or i == len(result.rmse_history) - 1:
            print(f"  iteration {i:2d}: {rmse:.4f}")

    # Recommend: highest predicted rating among unseen items for user 0.
    user = 0
    seen = set(
        (graph.edges.cols[graph.edges.rows == user] - spec.n_users).tolist()
    )
    scores = result.item_factors @ result.user_factors[user]
    order = np.argsort(scores)[::-1]
    recommendations = [int(i) for i in order if int(i) not in seen][:5]
    print(f"\nuser {user} rated {len(seen)} items; top-5 recommendations:")
    for item in recommendations:
        print(f"  item {item}: predicted rating {scores[item]:.2f}")


if __name__ == "__main__":
    main()
