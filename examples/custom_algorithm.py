"""Writing your own vertex program (the paper's productivity claim).

The GraphMat pitch is that a new graph algorithm is just four small
functions.  This example implements *k-hop reach counting* — how many
vertices are within k hops of each seed — as a fresh GraphProgram,
including the optional batch hooks that unlock the fused engine path.

Run:  python examples/custom_algorithm.py
"""

import numpy as np

from repro import EdgeDirection, EngineOptions, GraphProgram, rmat_graph, run_graph_program
from repro.graph.preprocess import symmetrize
from repro.vector.sparse_vector import FLOAT64


class HopCountProgram(GraphProgram):
    """Frontier expansion with hop budget tracking.

    Vertex property = remaining hop budget when first reached (-1 = not
    reached).  Messages carry ``budget - 1``; reduce keeps the largest
    remaining budget; vertices only forward while budget remains.
    """

    direction = EdgeDirection.OUT_EDGES
    message_spec = FLOAT64
    result_spec = FLOAT64
    property_spec = FLOAT64
    reduce_ufunc = np.maximum
    reduce_identity = -np.inf

    # --- the four user functions (scalar semantics) -------------------
    def send_message(self, vertex_prop):
        return vertex_prop - 1.0 if vertex_prop > 0 else None

    def process_message(self, message, edge_value, dst_prop):
        return message

    def reduce(self, a, b):
        return max(a, b)

    def apply(self, reduced, vertex_prop):
        return max(reduced, vertex_prop)

    # --- optional batch hooks (enable the fused engine path) ----------
    def send_message_batch(self, props, vertices):
        mask = props > 0
        return mask, props - 1.0

    def process_message_batch(self, messages, edge_values, dst_props):
        return messages

    def apply_batch(self, reduced, props):
        return np.maximum(reduced, props)


def k_hop_reach(graph, seeds, k):
    """Number of vertices within k hops of the seed set."""
    graph.init_properties(FLOAT64, -1.0)
    graph.set_all_inactive()
    for seed in seeds:
        graph.set_vertex_property(seed, float(k))
        graph.set_active(seed)
    stats = run_graph_program(graph, HopCountProgram(), EngineOptions())
    reached = int((graph.vertex_properties.data >= 0).sum())
    return reached, stats


def main() -> None:
    graph = symmetrize(rmat_graph(scale=12, edge_factor=8, seed=13))
    seeds = [5]
    print(
        f"graph: {graph.n_vertices:,} vertices, {graph.n_edges:,} edges; "
        f"seeds = {seeds}"
    )
    for k in (1, 2, 3, 4):
        reached, stats = k_hop_reach(graph, seeds, k)
        print(
            f"  within {k} hop(s): {reached:6,} vertices "
            f"({stats.n_supersteps} supersteps, "
            f"fused={stats.used_fused_path})"
        )


if __name__ == "__main__":
    main()
