"""Quickstart: build a graph, run two algorithms, inspect engine stats.

Run:  python examples/quickstart.py
"""

from repro import build_graph, run_bfs, run_pagerank, symmetrize


def main() -> None:
    # A little directed graph: tuples are (source, destination).
    graph = build_graph(
        [
            (0, 1), (0, 2), (1, 2), (2, 3),
            (3, 0), (3, 4), (4, 5), (5, 3),
        ]
    )
    print(f"graph: {graph.n_vertices} vertices, {graph.n_edges} edges")

    # PageRank (paper equation 1; unnormalized convention, ranks start at 1).
    result = run_pagerank(graph, max_iterations=100, tolerance=1e-10)
    print("\nPageRank (converged in", result.iterations, "supersteps):")
    for v, rank in enumerate(result.ranks):
        print(f"  vertex {v}: {rank:.4f}")

    # BFS needs an undirected view (the paper symmetrizes BFS inputs).
    bfs = run_bfs(symmetrize(graph), root=0)
    print("\nBFS levels from vertex 0:")
    for v, level in enumerate(bfs.distances):
        print(f"  vertex {v}: level {level:.0f}")
    print(
        f"\nengine ran {bfs.stats.n_supersteps} supersteps, "
        f"processed {bfs.stats.total_edges_processed} edges"
    )


if __name__ == "__main__":
    main()
