"""Docs lint: every registered metric must appear in docs/OBSERVABILITY.md.

The serving telemetry registers its full metric catalog at construction
(no lazy, traffic-dependent families), precisely so this check can be
total: instantiate :class:`repro.obs.serving.ServeTelemetry`, take every
metric name in its registry, and fail if any is missing from the metric
catalog in ``docs/OBSERVABILITY.md``.  A metric that operators cannot
look up is a metric that will be misread during an incident.

Run from the repo root (CI runs it in the lint job)::

    PYTHONPATH=src python tools/check_metrics_docs.py

Exits 0 when the docs cover the catalog, 1 listing every missing name
otherwise, 2 on usage errors (missing docs file).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_PATH = REPO_ROOT / "docs" / "OBSERVABILITY.md"


def missing_metrics(doc_text: str) -> list[str]:
    """Registered metric names absent from the documentation text."""
    from repro.obs.serving import ServeTelemetry

    telemetry = ServeTelemetry()
    return [
        name
        for name in telemetry.registry.names()
        if name not in doc_text
    ]


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    if not DOCS_PATH.exists():
        print(f"error: {DOCS_PATH} not found", file=sys.stderr)
        return 2
    missing = missing_metrics(DOCS_PATH.read_text())
    if missing:
        print(
            f"{len(missing)} registered metric(s) missing from "
            f"{DOCS_PATH.relative_to(REPO_ROOT)}:"
        )
        for name in missing:
            print(f"  {name}")
        print("\nAdd each to the metric catalog (name, labels, meaning).")
        return 1
    print(f"metric catalog complete: {DOCS_PATH.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
